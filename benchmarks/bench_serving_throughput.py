"""Serving throughput — requests/sec and cache amortization by batch size.

The estimation service's claim: once the per-dataset analysis sits in
the feature cache, every further target against that dataset pays only
the adjustment + model query. This bench pushes batches of 1, 16 and
64 same-dataset requests through a fresh service per batch size
(fresh, so batch 1 cannot ride on a previous batch's warm cache) and
reports requests/sec, the cache hit ratio, and the amortized
per-request analysis cost next to the cold single-shot cost.

Asserted: at batch size 16 and up the amortized cost undercuts the
single-shot cost (the ISSUE's acceptance criterion), and the cache hit
ratio matches the coalescing math ((n-1)/n for one shared dataset).

A second bench guards the observability layer's overhead: the same
batch-16 workload with a live tracer + metrics registry must keep at
least 95% of the plain throughput (recorded in the repo-root
``BENCH_obs_overhead.json``), and a third applies the same guard to
the sharded service with end-to-end trace propagation on — spans
recorded in forked shards, shipped home in replies and re-parented —
which must also keep >= 95% of the untraced sharded throughput.
"""

import json
import pathlib
import time

import numpy as np

from conftest import BENCH_CONFIG
from repro import obs
from repro.experiments.corpus import held_out_snapshots
from repro.experiments.harness import get_trained_fxrz
from repro.experiments.tables import render_table
from repro.serving import EstimateRequest, EstimationService

BATCH_SIZES = (1, 16, 64)

_OVERHEAD_JSON = (
    pathlib.Path(__file__).resolve().parents[1] / "BENCH_obs_overhead.json"
)


def _merge_overhead_json(update: dict) -> None:
    """Merge ``update`` into the repo-root overhead report.

    The tracing guard and the context guard each own a top-level key;
    merging (instead of rewriting) lets either bench run alone without
    clobbering the other's most recent numbers.
    """
    existing: dict = {}
    if _OVERHEAD_JSON.is_file():
        try:
            existing = json.loads(_OVERHEAD_JSON.read_text())
        except ValueError:
            existing = {}
    if not isinstance(existing, dict):
        existing = {}
    existing.update(update)
    _OVERHEAD_JSON.write_text(json.dumps(existing, indent=2) + "\n")


def test_serving_throughput(benchmark, report):
    pipeline = get_trained_fxrz("hurricane", "TC", "sz", config=BENCH_CONFIG)
    snapshot = held_out_snapshots("hurricane", "TC")[0]
    lo, hi = pipeline.trained_ratio_range(snapshot.data)
    targets_for = lambda n: np.linspace(lo * 1.05, hi * 0.95, n)  # noqa: E731

    # Cold baseline: every request pays features + blocks + model query.
    single_shot = float(
        np.mean(
            [
                pipeline.estimate_config(snapshot.data, float(tcr)).analysis_seconds
                for tcr in targets_for(8)
            ]
        )
    )

    rows = []
    amortized_by_batch = {}
    for batch_size in BATCH_SIZES:
        with EstimationService.for_pipeline(
            pipeline, workers=2, max_batch=batch_size
        ) as service:
            requests = [
                EstimateRequest(
                    data=snapshot.data,
                    target_ratio=float(tcr),
                    dataset_id=snapshot.name,
                )
                for tcr in targets_for(batch_size)
            ]
            tick = time.perf_counter()
            served = service.run_batch(requests)
            wall = time.perf_counter() - tick
            metrics = service.metrics
        amortized = float(
            np.mean([s.estimate.analysis_seconds for s in served])
        )
        amortized_by_batch[batch_size] = amortized
        rows.append(
            [
                str(batch_size),
                f"{batch_size / wall:.0f}",
                f"{metrics.cache_hit_ratio:.2f}",
                f"{amortized * 1e3:.3f} ms",
                f"{single_shot * 1e3:.3f} ms",
                f"{single_shot / max(amortized, 1e-12):.2f}x",
            ]
        )
        assert metrics.latency_count == batch_size
        assert metrics.cache_misses >= 1
        if batch_size > 1:
            assert metrics.cache_hits > 0, "coalesced batch must hit the cache"

    report(
        render_table(
            [
                "batch size",
                "req/s",
                "cache hit ratio",
                "amortized analysis",
                "single-shot analysis",
                "speedup",
            ],
            rows,
            title=(
                "Serving throughput - amortized per-request analysis cost "
                "vs the cold single-shot engine"
            ),
        )
    )

    for batch_size in (16, 64):
        assert amortized_by_batch[batch_size] < single_shot, (
            f"batch {batch_size}: amortized analysis must undercut "
            "the single-shot cost"
        )

    with EstimationService.for_pipeline(pipeline, workers=2) as service:
        service.estimate(snapshot.data, float(np.median(targets_for(3))))
        benchmark(
            lambda: service.estimate(
                snapshot.data, float(np.median(targets_for(3)))
            )
        )


def test_objective_mix_throughput_guard(report):
    """Quality traffic in the mix must keep >= 90% of ratio-only req/s.

    The objective refactor threads a typed target through submit,
    coalescing (per-kind pending keys), dispatch and the span/outcome
    plumbing; this guard pins that the machinery itself is free. The
    quality requests run with ``quality_probes=0`` — the analytic tier,
    a closed form — so the measured delta is objective dispatch, not
    compressor time (probe costs are a workload property, not an
    overhead; the resilience bench owns those). Same alternating
    best-of-trials design as the tracing guard: per round each service
    serves one 16-request batch, orders alternating, and the minimum
    trial overhead is guarded at 10%.
    """
    from repro.core.inference import InferenceEngine

    pipeline = get_trained_fxrz("hurricane", "TC", "sz", config=BENCH_CONFIG)
    snapshot = held_out_snapshots("hurricane", "TC")[0]
    lo, hi = pipeline.trained_ratio_range(snapshot.data)
    batch_size, rounds, trials = 16, 40, 3
    targets = np.linspace(lo * 1.05, hi * 0.95, batch_size)
    ratio_batch = [
        EstimateRequest(
            data=snapshot.data,
            target_ratio=float(tcr),
            dataset_id=snapshot.name,
        )
        for tcr in targets
    ]
    # Every 4th request becomes a PSNR objective: 12 ratio + 4 quality.
    mixed_batch = [
        EstimateRequest(
            data=snapshot.data,
            dataset_id=snapshot.name,
            objective=f"psnr:{50 + (i % 3) * 5}",
        )
        if i % 4 == 3
        else request
        for i, request in enumerate(ratio_batch)
    ]
    quality_requests = sum(1 for r in mixed_batch if r.objective is not None)

    def make_service() -> EstimationService:
        engine = InferenceEngine(
            pipeline.model,
            pipeline.compressor,
            config=pipeline.config,
            quality_probes=0,
        )
        return EstimationService(engine, workers=1, max_batch=batch_size)

    service_ratio = make_service()
    service_mixed = make_service()

    def run_ratio() -> float:
        tick = time.perf_counter()
        service_ratio.run_batch(ratio_batch)
        return time.perf_counter() - tick

    def run_mixed() -> float:
        tick = time.perf_counter()
        service_mixed.run_batch(mixed_batch)
        return time.perf_counter() - tick

    def run_trial() -> tuple[float, float]:
        ratio_seconds = mixed_seconds = 0.0
        for round_index in range(rounds):
            if round_index % 2 == 0:
                ratio_seconds += run_ratio()
                mixed_seconds += run_mixed()
            else:
                mixed_seconds += run_mixed()
                ratio_seconds += run_ratio()
        return ratio_seconds, mixed_seconds

    try:
        run_ratio()  # warm caches and both code paths
        served = service_mixed.run_batch(mixed_batch)
        for request, result in zip(mixed_batch, served):
            if request.objective is not None:
                assert result.estimate.tier == "analytic"
        trial_seconds = [run_trial() for _ in range(trials)]
    finally:
        service_ratio.close()
        service_mixed.close()

    total_requests = rounds * batch_size
    ratios = [
        (total_requests / mixed) / (total_requests / ratio)
        for ratio, mixed in trial_seconds
    ]
    best = max(range(trials), key=lambda index: ratios[index])
    ratio_seconds, mixed_seconds = trial_seconds[best]
    rps_ratio = total_requests / ratio_seconds
    rps_mixed = total_requests / mixed_seconds
    ratio = ratios[best]

    report(
        render_table(
            ["variant", "req/s (best trial)", "rounds/trial"],
            [
                ["ratio-only", f"{rps_ratio:.0f}", str(rounds)],
                [
                    f"mixed ({quality_requests}/{batch_size} psnr)",
                    f"{rps_mixed:.0f}",
                    str(rounds),
                ],
                [
                    "throughput ratio per trial",
                    " / ".join(f"{r:.3f}" for r in ratios),
                    "",
                ],
            ],
            title=(
                "Objective-mix throughput - PSNR objectives riding the "
                "ratio serving path (analytic tier)"
            ),
        )
    )

    _merge_overhead_json(
        {
            "objective_mix_throughput": {
                "batch_size": batch_size,
                "quality_requests_per_batch": quality_requests,
                "rounds_per_trial": rounds,
                "trials": trials,
                "requests_per_side_per_trial": total_requests,
                "trial_seconds": [list(pair) for pair in trial_seconds],
                "throughput_ratios": ratios,
                "throughput_ratio_best": ratio,
                "rps_ratio_only_best_trial": rps_ratio,
                "rps_mixed_best_trial": rps_mixed,
                "guard": (
                    "max over trials of (mixed req/s / ratio-only req/s) "
                    ">= 0.9"
                ),
            }
        }
    )

    assert ratio >= 0.9, (
        f"mixed objective round keeps only {ratio:.3f} of the ratio-only "
        f"throughput in the best of {trials} trials; objective dispatch "
        "exceeds its 10% budget"
    )


def test_tracing_overhead_guard(report):
    """Live tracing + metrics must cost < 5% req/s at batch 16.

    The disabled path is a module-global ``None`` check returning a
    shared null span, so the interesting number is the *enabled* cost:
    three spans plus a handful of counter/histogram updates per
    request, a few percent of a ~2 ms request. Resolving that against
    a shared box's load drift needs fine-grained alternation: two
    long-lived warm services — one plain, one built with the registry
    installed so its recorder mirrors metrics and its cache gauges are
    bound — serve one 16-request batch each per round, with the
    within-round order alternating. Each timed unit is ~30 ms, so load
    shifts slower than that hit both sides equally; the guarded
    statistic is the *aggregate* req/s over one trial's rounds (total
    requests / total timed seconds per side), which averages the
    residual jitter down. Because a whole trial's mean still drifts by
    a few percent run to run (CPU steal on a shared host moves slower
    than one trial), three independent trials run back to back and the
    *minimum* trial overhead is guarded: interference only has to miss
    one trial to expose the true cost, while a genuine regression
    inflates every trial. Coarser designs — a fresh service per timed
    section, best-of or median per-side statistics — all proved
    noisier than the effect itself.

    The services run one worker each, unlike the throughput bench
    above: with several workers the measurement folds in how the GIL
    schedules the extra pure-Python span code against numpy's
    released-GIL sections, which varies by machine and load. One worker
    attributes the whole delta to the instrumentation itself.
    """
    pipeline = get_trained_fxrz("hurricane", "TC", "sz", config=BENCH_CONFIG)
    snapshot = held_out_snapshots("hurricane", "TC")[0]
    lo, hi = pipeline.trained_ratio_range(snapshot.data)
    batch_size, rounds, trials = 16, 40, 3
    batch = [
        EstimateRequest(
            data=snapshot.data,
            target_ratio=float(tcr),
            dataset_id=snapshot.name,
        )
        for tcr in np.linspace(lo * 1.05, hi * 0.95, batch_size)
    ]

    tracer, registry = obs.Tracer(), obs.MetricsRegistry()
    service_plain = EstimationService.for_pipeline(
        pipeline, workers=1, max_batch=batch_size
    )
    obs.install(tracer, registry)
    service_traced = EstimationService.for_pipeline(
        pipeline, workers=1, max_batch=batch_size
    )
    obs.uninstall()

    def run_plain() -> float:
        tick = time.perf_counter()
        service_plain.run_batch(batch)
        return time.perf_counter() - tick

    spans_per_round = 0

    def run_traced() -> float:
        nonlocal spans_per_round
        obs.install(tracer, registry)
        tick = time.perf_counter()
        service_traced.run_batch(batch)
        elapsed = time.perf_counter() - tick
        obs.uninstall()
        spans_per_round = len(tracer)
        tracer.clear()
        return elapsed

    def run_trial() -> tuple[float, float]:
        plain_seconds = traced_seconds = 0.0
        for round_index in range(rounds):
            if round_index % 2 == 0:
                plain_seconds += run_plain()
                traced_seconds += run_traced()
            else:
                traced_seconds += run_traced()
                plain_seconds += run_plain()
        return plain_seconds, traced_seconds

    try:
        run_plain()  # warm caches, threads and both code paths
        run_traced()
        trial_seconds = [run_trial() for _ in range(trials)]
    finally:
        service_plain.close()
        service_traced.close()

    total_requests = rounds * batch_size
    overheads = [
        1.0 - (total_requests / traced) / (total_requests / plain)
        for plain, traced in trial_seconds
    ]
    best = min(range(trials), key=lambda index: overheads[index])
    plain_seconds, traced_seconds = trial_seconds[best]
    rps_plain = total_requests / plain_seconds
    rps_traced = total_requests / traced_seconds
    overhead = overheads[best]
    assert spans_per_round >= batch_size, (
        "tracer must have seen every request of the round"
    )

    report(
        render_table(
            ["variant", "req/s (best trial)", "rounds/trial"],
            [
                ["plain", f"{rps_plain:.0f}", str(rounds)],
                ["traced + metrics", f"{rps_traced:.0f}", str(rounds)],
                [
                    "overhead per trial",
                    " / ".join(f"{o * 100:.1f}%" for o in overheads),
                    "",
                ],
            ],
            title=(
                f"Tracing overhead - alternating 16-request batches, "
                f"{spans_per_round} spans per traced round"
            ),
        )
    )

    _merge_overhead_json(
        {
            "tracing_overhead": {
                "batch_size": batch_size,
                "rounds_per_trial": rounds,
                "trials": trials,
                "requests_per_side_per_trial": total_requests,
                "trial_seconds": [list(pair) for pair in trial_seconds],
                "overhead_fractions": overheads,
                "overhead_fraction_best": overhead,
                "rps_plain_best_trial": rps_plain,
                "rps_traced_best_trial": rps_traced,
                "spans_per_traced_round": spans_per_round,
                "guard": (
                    "min over trials of aggregate overhead <= 5% "
                    "(rps_traced >= 0.95 * rps_plain)"
                ),
            }
        }
    )

    assert overhead <= 0.05, (
        f"tracing overhead {overhead * 100:.1f}% in the best of {trials} "
        f"trials ({rounds} alternating rounds each) exceeds the 5% "
        "req/s budget"
    )


def test_sharded_tracing_overhead_guard(report, tmp_path):
    """End-to-end tracing across the fork boundary must cost < 5% req/s.

    The sharded path adds costs the in-process guard above cannot see:
    the supervisor's request/admit/dispatch spans, the trace context
    ride-along on every work message, the shard's local tracer, and the
    drained span payloads serialized into every reply. Same design as
    the in-process guard — two long-lived warm services (identical
    except ``trace_sample`` 0.0 vs 1.0, built with the same installed
    tracer + registry so the only delta is per-request tracing),
    alternating one 16-request batch each per round, minimum trial
    overhead guarded at 5% (rps_traced >= 0.95 * rps_plain).
    """
    from repro.core.persistence import save_pipeline
    from repro.serving import ShardedEstimationService

    pipeline = get_trained_fxrz("hurricane", "TC", "sz", config=BENCH_CONFIG)
    snapshot = held_out_snapshots("hurricane", "TC")[0]
    lo, hi = pipeline.trained_ratio_range(snapshot.data)
    batch_size, rounds, trials = 16, 12, 3
    batch = [
        EstimateRequest(
            data=snapshot.data,
            target_ratio=float(tcr),
            dataset_id=snapshot.name,
        )
        for tcr in np.linspace(lo * 1.05, hi * 0.95, batch_size)
    ]
    model_path = str(tmp_path / "model.fxrz")
    save_pipeline(pipeline, model_path)

    def _wait_ready(service, timeout: float = 60.0) -> None:
        give_up = time.perf_counter() + timeout
        while time.perf_counter() < give_up:
            states = service.shard_states()
            if all(s["state"] == "ready" for s in states):
                return
            time.sleep(0.02)
        raise AssertionError(f"shards never ready: {service.shard_states()}")

    tracer, registry = obs.Tracer(), obs.MetricsRegistry()
    obs.install(tracer, registry)
    spans_per_round = 0
    try:
        service_plain = ShardedEstimationService(
            pipeline,
            shards=1,
            model_path=model_path,
            trace_sample=0.0,
        )
        service_traced = ShardedEstimationService(
            pipeline,
            shards=1,
            model_path=model_path,
            trace_sample=1.0,
        )

        def run_plain() -> float:
            tick = time.perf_counter()
            service_plain.run_batch(batch, timeout=120.0)
            return time.perf_counter() - tick

        def run_traced() -> float:
            nonlocal spans_per_round
            tick = time.perf_counter()
            service_traced.run_batch(batch, timeout=120.0)
            elapsed = time.perf_counter() - tick
            spans_per_round = len(tracer)
            tracer.clear()
            return elapsed

        def run_trial() -> tuple[float, float]:
            plain_seconds = traced_seconds = 0.0
            for round_index in range(rounds):
                if round_index % 2 == 0:
                    plain_seconds += run_plain()
                    traced_seconds += run_traced()
                else:
                    traced_seconds += run_traced()
                    plain_seconds += run_plain()
            return plain_seconds, traced_seconds

        try:
            _wait_ready(service_plain)
            _wait_ready(service_traced)
            run_plain()  # warm shard caches and both code paths
            run_traced()
            trial_seconds = [run_trial() for _ in range(trials)]
        finally:
            service_plain.close()
            service_traced.close()
    finally:
        obs.uninstall()

    total_requests = rounds * batch_size
    ratios = [
        (total_requests / traced) / (total_requests / plain)
        for plain, traced in trial_seconds
    ]
    best = max(range(trials), key=lambda index: ratios[index])
    plain_seconds, traced_seconds = trial_seconds[best]
    rps_plain = total_requests / plain_seconds
    rps_traced = total_requests / traced_seconds
    ratio = ratios[best]
    assert spans_per_round >= batch_size, (
        "the traced service must have shipped every request's spans home"
    )

    report(
        render_table(
            ["variant", "req/s (best trial)", "rounds/trial"],
            [
                ["sharded plain", f"{rps_plain:.0f}", str(rounds)],
                ["sharded traced", f"{rps_traced:.0f}", str(rounds)],
                [
                    "throughput ratio per trial",
                    " / ".join(f"{r:.3f}" for r in ratios),
                    "",
                ],
            ],
            title=(
                f"Sharded tracing overhead - alternating 16-request "
                f"batches, {spans_per_round} spans per traced round"
            ),
        )
    )

    _merge_overhead_json(
        {
            "sharded_tracing_overhead": {
                "batch_size": batch_size,
                "rounds_per_trial": rounds,
                "trials": trials,
                "requests_per_side_per_trial": total_requests,
                "trial_seconds": [list(pair) for pair in trial_seconds],
                "throughput_ratios": ratios,
                "throughput_ratio_best": ratio,
                "rps_plain_best_trial": rps_plain,
                "rps_traced_best_trial": rps_traced,
                "spans_per_traced_round": spans_per_round,
                "guard": (
                    "max over trials of (traced req/s / plain req/s) "
                    ">= 0.95"
                ),
            }
        }
    )

    assert ratio >= 0.95, (
        f"sharded tracing keeps only {ratio:.3f} of plain throughput in "
        f"the best of {trials} trials ({rounds} alternating rounds "
        "each); the end-to-end trace path exceeds its 5% budget"
    )


def test_context_overhead_guard(report):
    """A context-per-request anti-pattern must stay cheap to forgive.

    The runtime layer's sales pitch is one shared session per process,
    but embedders will inevitably build a fresh ``RuntimeContext`` per
    request (web handlers, notebook cells). This guard pins that the
    build + engine wiring + close cycle costs at most ~15% of a ~2 ms
    guarded estimate — i.e. construction stays allocation-cheap with no
    hidden pool spin-up or file I/O on the serial path. The same
    alternating best-of-trials design as the tracing guard absorbs
    shared-host load drift: per round, one side serves a 16-request
    burst drawing every engine from one shared session while the other
    builds (and closes) a context per request, order alternating; the
    minimum trial overhead is guarded.
    """
    from repro.robustness import GuardedInferenceEngine
    from repro.runtime import RuntimeContext

    pipeline = get_trained_fxrz("hurricane", "TC", "sz", config=BENCH_CONFIG)
    snapshot = held_out_snapshots("hurricane", "TC")[0]
    lo, hi = pipeline.trained_ratio_range(snapshot.data)
    burst, rounds, trials = 16, 40, 3
    targets = [float(t) for t in np.linspace(lo * 1.05, hi * 0.95, burst)]
    analysis = pipeline.estimate_config(snapshot.data, targets[0])  # warm features
    del analysis

    shared_ctx = RuntimeContext(env={})

    def run_shared() -> float:
        tick = time.perf_counter()
        for target in targets:
            engine = GuardedInferenceEngine(pipeline, ctx=shared_ctx)
            engine.estimate(snapshot.data, target)
        return time.perf_counter() - tick

    def run_per_request() -> float:
        tick = time.perf_counter()
        for target in targets:
            with RuntimeContext(env={}) as ctx:
                engine = GuardedInferenceEngine(pipeline, ctx=ctx)
                engine.estimate(snapshot.data, target)
        return time.perf_counter() - tick

    def run_trial() -> tuple[float, float]:
        shared_seconds = fresh_seconds = 0.0
        for round_index in range(rounds):
            if round_index % 2 == 0:
                shared_seconds += run_shared()
                fresh_seconds += run_per_request()
            else:
                fresh_seconds += run_per_request()
                shared_seconds += run_shared()
        return shared_seconds, fresh_seconds

    try:
        run_shared()  # warm both code paths
        run_per_request()
        trial_seconds = [run_trial() for _ in range(trials)]
    finally:
        shared_ctx.close()

    total_requests = rounds * burst
    ratios = [shared / fresh for shared, fresh in trial_seconds]
    best = max(range(trials), key=lambda index: ratios[index])
    shared_seconds, fresh_seconds = trial_seconds[best]
    rps_shared = total_requests / shared_seconds
    rps_fresh = total_requests / fresh_seconds
    ratio = ratios[best]

    report(
        render_table(
            ["variant", "req/s (best trial)", "rounds/trial"],
            [
                ["shared context", f"{rps_shared:.0f}", str(rounds)],
                ["context per request", f"{rps_fresh:.0f}", str(rounds)],
                [
                    "throughput ratio per trial",
                    " / ".join(f"{r:.3f}" for r in ratios),
                    "",
                ],
            ],
            title=(
                "RuntimeContext construction overhead - per-request "
                "build/close vs one shared session"
            ),
        )
    )

    _merge_overhead_json(
        {
            "context_overhead": {
                "burst_size": burst,
                "rounds_per_trial": rounds,
                "trials": trials,
                "requests_per_side_per_trial": total_requests,
                "trial_seconds": [list(pair) for pair in trial_seconds],
                "throughput_ratios": ratios,
                "throughput_ratio_best": ratio,
                "rps_shared_best_trial": rps_shared,
                "rps_context_per_request_best_trial": rps_fresh,
                "guard": (
                    "max over trials of (context-per-request req/s / "
                    "shared-context req/s) >= 0.85"
                ),
            }
        }
    )

    assert ratio >= 0.85, (
        f"context-per-request throughput is {ratio:.3f} of the shared-"
        f"session throughput in the best of {trials} trials; context "
        "construction must stay under ~15% of a guarded estimate"
    )
