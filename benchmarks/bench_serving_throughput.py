"""Serving throughput — requests/sec and cache amortization by batch size.

The estimation service's claim: once the per-dataset analysis sits in
the feature cache, every further target against that dataset pays only
the adjustment + model query. This bench pushes batches of 1, 16 and
64 same-dataset requests through a fresh service per batch size
(fresh, so batch 1 cannot ride on a previous batch's warm cache) and
reports requests/sec, the cache hit ratio, and the amortized
per-request analysis cost next to the cold single-shot cost.

Asserted: at batch size 16 and up the amortized cost undercuts the
single-shot cost (the ISSUE's acceptance criterion), and the cache hit
ratio matches the coalescing math ((n-1)/n for one shared dataset).
"""

import time

import numpy as np

from conftest import BENCH_CONFIG
from repro.experiments.corpus import held_out_snapshots
from repro.experiments.harness import get_trained_fxrz
from repro.experiments.tables import render_table
from repro.serving import EstimateRequest, EstimationService

BATCH_SIZES = (1, 16, 64)


def test_serving_throughput(benchmark, report):
    pipeline = get_trained_fxrz("hurricane", "TC", "sz", config=BENCH_CONFIG)
    snapshot = held_out_snapshots("hurricane", "TC")[0]
    lo, hi = pipeline.trained_ratio_range(snapshot.data)
    targets_for = lambda n: np.linspace(lo * 1.05, hi * 0.95, n)  # noqa: E731

    # Cold baseline: every request pays features + blocks + model query.
    single_shot = float(
        np.mean(
            [
                pipeline.estimate_config(snapshot.data, float(tcr)).analysis_seconds
                for tcr in targets_for(8)
            ]
        )
    )

    rows = []
    amortized_by_batch = {}
    for batch_size in BATCH_SIZES:
        with EstimationService.for_pipeline(
            pipeline, workers=2, max_batch=batch_size
        ) as service:
            requests = [
                EstimateRequest(
                    data=snapshot.data,
                    target_ratio=float(tcr),
                    dataset_id=snapshot.name,
                )
                for tcr in targets_for(batch_size)
            ]
            tick = time.perf_counter()
            served = service.run_batch(requests)
            wall = time.perf_counter() - tick
            metrics = service.metrics
        amortized = float(
            np.mean([s.estimate.analysis_seconds for s in served])
        )
        amortized_by_batch[batch_size] = amortized
        rows.append(
            [
                str(batch_size),
                f"{batch_size / wall:.0f}",
                f"{metrics.cache_hit_ratio:.2f}",
                f"{amortized * 1e3:.3f} ms",
                f"{single_shot * 1e3:.3f} ms",
                f"{single_shot / max(amortized, 1e-12):.2f}x",
            ]
        )
        assert metrics.latency_count == batch_size
        assert metrics.cache_misses >= 1
        if batch_size > 1:
            assert metrics.cache_hits > 0, "coalesced batch must hit the cache"

    report(
        render_table(
            [
                "batch size",
                "req/s",
                "cache hit ratio",
                "amortized analysis",
                "single-shot analysis",
                "speedup",
            ],
            rows,
            title=(
                "Serving throughput - amortized per-request analysis cost "
                "vs the cold single-shot engine"
            ),
        )
    )

    for batch_size in (16, 64):
        assert amortized_by_batch[batch_size] < single_shot, (
            f"batch {batch_size}: amortized analysis must undercut "
            "the single-shot cost"
        )

    with EstimationService.for_pipeline(pipeline, workers=2) as service:
        service.estimate(snapshot.data, float(np.median(targets_for(3))))
        benchmark(
            lambda: service.estimate(
                snapshot.data, float(np.median(targets_for(3)))
            )
        )
