"""Parallel execution layer — sweep scaling, memo reuse, forest fit.

Three measurements over the new :mod:`repro.parallel` seams:

1. **Sweep scaling** — ``build_curve`` at several ``--jobs`` levels,
   each run twice against one shared memo: the *cold* pass pays every
   compressor run (fanned over the process pool; on a multi-core box
   the wall clock drops with jobs), the *warm* pass answers every
   stationary config from the memo. Both wall clocks, the parallel
   speedup and the memo-warm speedup are recorded — separately and
   honestly labeled, because they come from different mechanisms.
2. **Forest fit** — serial vs ``n_jobs=4`` fit wall clock, with the
   bit-identical-prediction parity asserted in passing.
3. **FRaZ memo reuse** — the same field searched twice through one
   memo; the second search must *hit* (the cross-path cache's
   raison d'être) and its compressor-free wall clock is recorded. The
   section runs with a live :class:`~repro.obs.MetricsRegistry`: the
   memo's counters surface as ``repro_memo_*`` gauges and FRaZ's probe
   tally as ``repro_fraz_probes_total``, printed as a third table.

Smoke mode (default) keeps the grid small so the bench lands in
seconds; ``FXRZ_BENCH_PARALLEL_FULL=1`` switches to the ISSUE's
256^3 / 25-point configuration. Results go to stdout, to
``benchmarks/results/``, and machine-readably to the repo-root
``BENCH_parallel_scaling.json``.
"""

import json
import os
import pathlib
import time

import numpy as np

from repro import obs
from repro.compressors import get_compressor
from repro.core.augmentation import build_curve
from repro.baselines.fraz import FRaZ
from repro.experiments.tables import render_table
from repro.ml.forest import RandomForestRegressor
from repro.parallel import CompressionMemoCache, available_cpus
from repro.runtime import RuntimeContext

FULL = os.environ.get("FXRZ_BENCH_PARALLEL_FULL", "") not in ("", "0")
GRID = 256 if FULL else 64
N_POINTS = 25 if FULL else 8
JOBS_LEVELS = (1, 2, 4, 8) if FULL else (1, 2, 4)
#: Cold sweeps per jobs level; the minimum is the recorded wall clock
#: (standard noise-robust estimator — smoke grids finish in ~100 ms, so
#: a single stray scheduler tick would otherwise dominate the ratio).
COLD_REPS = 1 if FULL else 3

_JSON_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_parallel_scaling.json"


def _field(n: int) -> np.ndarray:
    lin = np.linspace(0, 4 * np.pi, n)
    x, y, z = np.meshgrid(lin, lin, lin, indexing="ij")
    noise = np.random.default_rng(13).standard_normal((n, n, n))
    return (np.sin(x) * np.cos(y) * np.sin(z) + 0.05 * noise).astype(np.float32)


def test_parallel_scaling(benchmark, report):
    sz = get_compressor("sz")
    data = _field(GRID)
    fingerprint = CompressionMemoCache.fingerprint(data)

    # -- 1. sweep scaling: cold (pool) + warm (memo) per jobs level -----------
    sweep_rows = []
    sweep_records = []
    reference = None
    serial_cold = None
    for jobs in JOBS_LEVELS:
        cold = None
        memo = None
        cold_curve = None
        # Each rep gets a fresh context (and so a fresh memo) so every
        # pass really pays the compressor runs; the fat-batch dispatch
        # groups the sweep's probes into one task per worker.
        for _ in range(COLD_REPS):
            cold_ctx = RuntimeContext(env={}, jobs=jobs)
            tick = time.perf_counter()
            cold_curve = build_curve(
                sz, data, n_points=N_POINTS, ctx=cold_ctx, fingerprint=fingerprint
            )
            elapsed = time.perf_counter() - tick
            cold = elapsed if cold is None else min(cold, elapsed)
            memo = cold_ctx.memo
            cold_ctx.close()
        # The warm pass answers from the memo alone: a serial context
        # borrowing the cold session's memo keeps the pool out of the
        # timing (and out of the memo path — hits resolve in-driver).
        warm_ctx = RuntimeContext(env={}, memo=memo)
        tick = time.perf_counter()
        warm_curve = build_curve(
            sz, data, n_points=N_POINTS, ctx=warm_ctx, fingerprint=fingerprint
        )
        warm = time.perf_counter() - tick
        warm_ctx.close()

        if reference is None:
            reference = cold_curve
            serial_cold = cold
        np.testing.assert_array_equal(cold_curve.ratios, reference.ratios)
        np.testing.assert_array_equal(warm_curve.ratios, reference.ratios)
        assert memo.hits >= N_POINTS, "warm sweep must answer from the memo"

        cold_speedup = serial_cold / max(cold, 1e-12)
        warm_speedup = cold / max(warm, 1e-12)
        sweep_rows.append(
            [
                str(jobs),
                f"{cold:.3f} s",
                f"{cold_speedup:.2f}x",
                f"{warm * 1e3:.1f} ms",
                f"{warm_speedup:.1f}x",
                f"{memo.hit_ratio:.2f}",
            ]
        )
        sweep_records.append(
            {
                "jobs": jobs,
                "effective_jobs": min(jobs, available_cpus()),
                "cold_seconds": cold,
                "cold_speedup_vs_serial": cold_speedup,
                "warm_seconds": warm,
                "warm_speedup_vs_cold": warm_speedup,
                "memo_hits": memo.hits,
                "memo_hit_ratio": memo.hit_ratio,
            }
        )

    at4 = next(r for r in sweep_records if r["jobs"] == 4)
    assert at4["warm_speedup_vs_cold"] >= 2.5, (
        "memo-warm sweep at jobs=4 must be at least 2.5x faster than cold"
    )

    # Fat-task cold scaling: batched dispatch must beat serial on real
    # cores. On a single-CPU host the auto backend clamps every jobs
    # level to the in-driver serial path, so there is no fan-out to
    # measure — the level is recorded (speedup ~1.0 by construction)
    # and the floor is skipped with a note.
    cpus = available_cpus()
    if cpus >= 4:
        cold_floor = 1.3
    elif cpus >= 2:
        cold_floor = 1.1
    else:
        cold_floor = None
    if cold_floor is not None:
        assert at4["cold_speedup_vs_serial"] >= cold_floor, (
            f"cold sweep at jobs=4 scaled {at4['cold_speedup_vs_serial']:.2f}x "
            f"on {cpus} CPUs; floor is {cold_floor}x"
        )
    else:
        print(
            "note: single-CPU host - auto backend clamps jobs=4 to the "
            "serial path; cold-scaling floor skipped"
        )

    # -- 2. forest fit: serial vs n_jobs=4, parity asserted -------------------
    rng = np.random.default_rng(7)
    x = rng.normal(size=(400, 6))
    y = x @ rng.normal(size=6) + 0.1 * rng.normal(size=400)
    tick = time.perf_counter()
    serial_forest = RandomForestRegressor(n_estimators=24, random_state=3).fit(x, y)
    fit_serial = time.perf_counter() - tick
    tick = time.perf_counter()
    parallel_forest = RandomForestRegressor(
        n_estimators=24, random_state=3, n_jobs=4
    ).fit(x, y)
    fit_parallel = time.perf_counter() - tick
    queries = rng.normal(size=(50, 6))
    np.testing.assert_array_equal(
        parallel_forest.predict(queries), serial_forest.predict(queries)
    )

    # -- 3. FRaZ memo reuse: the second search must hit -----------------------
    # Run under a RuntimeContext carrying a live metrics registry: the
    # session memo registers its repro_memo_* gauges on first use, the
    # context makes the registry ambient for FRaZ's probe counters, and
    # both searches draw the same memo from the session.
    registry = obs.MetricsRegistry()
    curve = reference
    target = float(np.sqrt(np.prod(curve.ratio_range)))
    with RuntimeContext(env={}, registry=registry) as ctx:
        memo = ctx.memo
        tick = time.perf_counter()
        first = FRaZ(sz, max_iterations=6, ctx=ctx).search(data, target)
        fraz_first = time.perf_counter() - tick
        hits_before = memo.hits
        tick = time.perf_counter()
        second = FRaZ(sz, max_iterations=6, ctx=ctx).search(data, target)
        fraz_second = time.perf_counter() - tick
    fraz_hits = memo.hits - hits_before
    assert fraz_hits >= 1, "repeat FRaZ search must hit the shared memo"
    assert second.evaluations == first.evaluations
    assert second.search_seconds == first.search_seconds  # recorded, honest

    registry.collect()
    assert registry.get("repro_memo_hits").value() == memo.hits
    assert registry.get("repro_fraz_searches_total").value() == 2
    metric_rows = []
    for name in (
        "repro_memo_hits",
        "repro_memo_misses",
        "repro_memo_evictions",
        "repro_memo_entries",
    ):
        metric_rows.append([name, f"{registry.get(name).value():g}"])
    probes = registry.get("repro_fraz_probes_total")
    for key in probes.labels():
        labels = ",".join(f'{k}="{v}"' for k, v in key)
        metric_rows.append(
            [f"repro_fraz_probes_total{{{labels}}}", f"{probes.value(**dict(key)):g}"]
        )

    report(
        render_table(
            ["jobs", "cold sweep", "vs serial", "warm sweep", "warm vs cold", "hit ratio"],
            sweep_rows,
            title=(
                f"Parallel scaling - {N_POINTS}-point sweep of a "
                f"{GRID}^3 field on {available_cpus()} CPU(s) "
                f"({'full' if FULL else 'smoke'} mode)"
            ),
        )
        + "\n"
        + render_table(
            ["path", "serial", "jobs=4", "note"],
            [
                [
                    "forest fit (24 trees)",
                    f"{fit_serial:.3f} s",
                    f"{fit_parallel:.3f} s",
                    "predictions bit-identical",
                ],
                [
                    "FRaZ search x2 (shared memo)",
                    f"{fraz_first:.3f} s",
                    f"{fraz_second:.3f} s",
                    f"{fraz_hits} memo hit(s) on repeat",
                ],
            ],
            title="Forest fit and FRaZ memo reuse",
        )
        + "\n"
        + render_table(
            ["metric", "value"],
            metric_rows,
            title="Registry view of the FRaZ section (pull-model gauges)",
        )
    )

    _JSON_PATH.write_text(
        json.dumps(
            {
                "mode": "full" if FULL else "smoke",
                "cpus": available_cpus(),
                "grid": [GRID, GRID, GRID],
                "n_points": N_POINTS,
                "cold_reps": COLD_REPS,
                "cold_scaling_floor": {
                    "jobs": 4,
                    "floor": cold_floor,
                    "applied": cold_floor is not None,
                    "note": (
                        "single-CPU host: auto backend clamps to serial"
                        if cold_floor is None
                        else "min-of-reps cold sweep, fat-batched tasks"
                    ),
                },
                "sweep": sweep_records,
                "forest_fit": {
                    "n_estimators": 24,
                    "serial_seconds": fit_serial,
                    "jobs4_seconds": fit_parallel,
                    "bit_identical": True,
                },
                "fraz_memo": {
                    "target_ratio": target,
                    "first_seconds": fraz_first,
                    "second_seconds": fraz_second,
                    "repeat_memo_hits": fraz_hits,
                    "recorded_search_seconds": first.search_seconds,
                },
                "registry": registry.to_dict(),
            },
            indent=2,
        )
        + "\n"
    )

    # The steady-state op the layer optimizes for: a fully memo-warm sweep.
    with RuntimeContext(env={}) as steady_ctx:
        build_curve(
            sz, data, n_points=N_POINTS, ctx=steady_ctx, fingerprint=fingerprint
        )
        benchmark(
            lambda: build_curve(
                sz, data, n_points=N_POINTS, ctx=steady_ctx, fingerprint=fingerprint
            )
        )
