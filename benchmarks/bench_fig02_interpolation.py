"""Fig. 2 — stationary points and the interpolated CR-vs-eb curve.

Reproduces: (a) the anchored curves for SZ and ZFP on Nyx baryon
density, including ZFP's stairwise shape; (b) the paper's claim that
configs interpolated for a requested ratio land within a few percent
of it when measured (3.04 % for SZ / 3.96 % for ZFP on the paper's
data; the bench asserts a generous shape-level band).
"""

import numpy as np

from repro.compressors import get_compressor
from repro.core.augmentation import build_curve
from repro.datasets import load_series
from repro.experiments.figures import ascii_plot
from repro.experiments.tables import render_table


def _interpolation_error(compressor, data, curve, n_targets=8):
    lo, hi = curve.ratio_range
    errors = []
    for target in np.linspace(lo * 1.1, hi * 0.9, n_targets):
        config = curve.config_for_ratio(float(target))
        measured = compressor.compression_ratio(data, config)
        errors.append(abs(measured - target) / target)
    return float(np.mean(errors))


def test_fig02_interpolated_curves(benchmark, report):
    data = load_series("nyx-1", "baryon_density").snapshots[0].data

    rows = []
    curves = {}
    for name in ("sz", "zfp", "fpzip", "mgard"):
        comp = get_compressor(name)
        curve = build_curve(comp, data, n_points=25)
        curves[name] = (comp, curve)
        err = _interpolation_error(comp, data, curve)
        rows.append(
            [
                name,
                f"{curve.configs[0]:.3g}..{curve.configs[-1]:.3g}",
                f"{curve.ratio_range[0]:.1f}..{curve.ratio_range[1]:.1f}",
                f"{err:.1%}",
            ]
        )

    # The benchmarked kernel: one curve inversion (the augmentation
    # primitive FXRZ calls thousands of times during training).
    sz_curve = curves["sz"][1]
    mid = float(np.mean(sz_curve.ratio_range))
    benchmark(lambda: sz_curve.config_for_ratio(mid))

    sz_c = curves["sz"][1]
    zfp_c = curves["zfp"][1]
    plot = ascii_plot(
        np.log10(sz_c.configs),
        {"sz": sz_c.ratios, "zfp": zfp_c.ratios},
        logy=True,
    )
    report(
        render_table(
            ["compressor", "config range", "CR range", "mean interp err"],
            rows,
            title="Fig. 2 - interpolated curves (Nyx baryon density)",
        )
        + "\n\nCR vs log10(eb) — note ZFP's stairsteps:\n"
        + plot
    )

    # Shape assertions: interpolation stays accurate; ZFP's curve has
    # flat stairs while SZ's grows smoothly.
    errs = {row[0]: float(row[3].rstrip("%")) for row in rows}
    assert errs["sz"] < 15.0
    assert errs["zfp"] < 25.0
    zfp_ratios = curves["zfp"][1].ratios
    assert np.sum(np.abs(np.diff(zfp_ratios)) < 1e-6) >= 3, "ZFP stairsteps"
    sz_ratios = curves["sz"][1].ratios
    assert (np.diff(np.maximum.accumulate(sz_ratios)) >= 0).all()
