"""Compressor throughput survey (repo performance table).

Not a paper experiment — the throughput table any compression library
publishes: per-compressor encode/decode speed and ratio on a common
field at a common relative error level. Useful both as documentation
and as a regression canary for the pure-Python hot paths (the Table VI
/ VIII and parallel-dumping benches all build on these speeds).
"""

import time

import numpy as np

from repro.compressors import available_compressors, get_compressor
from repro.datasets import load_series
from repro.experiments.tables import render_table

_CONFIGS = {
    "sz": lambda spread: 1e-3 * spread,
    "sz2": lambda spread: 1e-3 * spread,
    "zfp": lambda spread: 1e-3 * spread,
    "mgard": lambda spread: 1e-3 * spread,
    "fpzip": lambda spread: 16,
    "digit": lambda spread: 4,
}


def test_compressor_throughput(benchmark, report):
    data = load_series("nyx-1", "baryon_density").snapshots[0].data
    spread = float(np.ptp(data))
    mb = data.nbytes / 1e6

    rows = []
    speeds = {}
    for name in sorted(_CONFIGS):
        assert name in available_compressors()
        comp = get_compressor(name)
        config = _CONFIGS[name](spread)

        tick = time.perf_counter()
        blob = comp.compress(data, config)
        enc_s = time.perf_counter() - tick
        tick = time.perf_counter()
        comp.decompress(blob)
        dec_s = time.perf_counter() - tick
        speeds[name] = (mb / enc_s, mb / dec_s)
        rows.append(
            [
                name,
                f"{config:.4g}",
                f"{blob.compression_ratio:.2f}",
                f"{mb / enc_s:.1f} MB/s",
                f"{mb / dec_s:.1f} MB/s",
            ]
        )

    benchmark(lambda: get_compressor("sz").compress(data, 1e-3 * spread))

    report(
        render_table(
            ["compressor", "config", "CR", "encode", "decode"],
            rows,
            title=f"Compressor throughput on Nyx baryon density ({mb:.1f} MB)",
        )
    )

    # Sanity floor: nothing should be pathologically slow (> 60 s/MB).
    for name, (enc, dec) in speeds.items():
        assert enc > 1 / 60, f"{name} encode too slow"
        assert dec > 1 / 60, f"{name} decode too slow"
