"""Compressor throughput survey (repo performance table).

Not a paper experiment — the throughput table any compression library
publishes: per-compressor encode/decode speed and ratio on a common
field at a common relative error level. Useful both as documentation
and as a regression canary for the pure-Python hot paths (the Table VI
/ VIII and parallel-dumping benches all build on these speeds).

Two kinds of rows:

* **cold** — ``compressor.compress`` with fresh scratch every call,
  the cost an application pays for a one-off block.
* **stream** — ``compressor.compress_stream()`` reusing one
  :class:`~repro.compressors.kernels.KernelArena` across repeats, the
  cost a timestep loop pays once the arena is warm.

Each row is the median of a few repeats and is gated by a regression
floor in MB/s (set at roughly half the speed measured on the reference
container, so real regressions trip but scheduler noise does not).
Results land in ``BENCH_kernel_throughput.json`` at the repo root; the
JSON also records the pre-kernel seed baseline so the fused-kernel
speedup stays auditable.
"""

import json
import pathlib
import time

import numpy as np

from repro.compressors import available_compressors, get_compressor
from repro.compressors.sz import SZCompressor
from repro.datasets import load_series
from repro.experiments.tables import render_table

_JSON_PATH = (
    pathlib.Path(__file__).resolve().parents[1] / "BENCH_kernel_throughput.json"
)

_CONFIGS = {
    "sz": lambda spread: 1e-3 * spread,
    "sz2": lambda spread: 1e-3 * spread,
    "zfp": lambda spread: 1e-3 * spread,
    "mgard": lambda spread: 1e-3 * spread,
    "fpzip": lambda spread: 16,
    "digit": lambda spread: 4,
}

#: Regression floors in MB/s, (encode, decode) per cold row. Roughly
#: half the medians measured on the reference container — a genuine
#: hot-path regression (a de-fused kernel, a quadratic repack) lands
#: well below these, ordinary scheduler noise does not.
_FLOORS = {
    "sz": (15.0, 3.0),
    "sz2": (6.0, 1.8),
    "zfp": (20.0, 12.0),
    "mgard": (6.0, 1.3),
    "fpzip": (6.0, 1.2),
    "digit": (5.0, 1.2),
}

#: Streaming rows: compressor factory + (encode, decode) floors. The
#: warm-arena path must never be slower than the cold floor.
_STREAM_ROWS = {
    "sz": (lambda: get_compressor("sz"), (15.0, 3.0)),
    "sz/chunked": (lambda: SZCompressor(entropy="chunked"), (12.0, 6.0)),
    "sz2": (lambda: get_compressor("sz2"), (6.0, 1.8)),
}

#: Seed-tree medians on this container (pre fused-kernel refactor),
#: measured with the same median-of-repeats loop. The acceptance bar
#: for the batched kernels is >= 2x the seed SZ encode speed.
_SEED_BASELINE_MB_S = {"sz": (12.0, 6.0), "sz2": (10.4, 5.1)}

_REPS = 7


def _median_speed(fn, mb, reps=_REPS):
    fn()  # warmup: prime caches / grow arenas outside the timed region
    times = []
    for _ in range(reps):
        tick = time.perf_counter()
        fn()
        times.append(time.perf_counter() - tick)
    return mb / float(np.median(times))


def test_compressor_throughput(benchmark, report):
    data = load_series("nyx-1", "baryon_density").snapshots[0].data
    spread = float(np.ptp(data))
    mb = data.nbytes / 1e6

    rows = []
    results = {"cold": {}, "stream": {}}

    for name in sorted(_CONFIGS):
        assert name in available_compressors()
        comp = get_compressor(name)
        config = _CONFIGS[name](spread)
        blob = comp.compress(data, config)
        enc = _median_speed(lambda: comp.compress(data, config), mb)
        dec = _median_speed(lambda: comp.decompress(blob), mb)
        floor_enc, floor_dec = _FLOORS[name]
        results["cold"][name] = {
            "config": config,
            "ratio": round(blob.compression_ratio, 3),
            "enc_mb_s": round(enc, 2),
            "dec_mb_s": round(dec, 2),
            "floor_enc_mb_s": floor_enc,
            "floor_dec_mb_s": floor_dec,
        }
        rows.append(
            [
                name,
                "cold",
                f"{config:.4g}",
                f"{blob.compression_ratio:.2f}",
                f"{enc:.1f} MB/s",
                f"{dec:.1f} MB/s",
            ]
        )

    for label, (factory, floors) in _STREAM_ROWS.items():
        comp = factory()
        config = 1e-3 * spread
        stream = comp.compress_stream()
        blob = stream.compress(data, config)
        enc = _median_speed(lambda: stream.compress(data, config), mb)
        dec = _median_speed(lambda: stream.decompress(blob), mb)
        results["stream"][label] = {
            "config": config,
            "ratio": round(blob.compression_ratio, 3),
            "enc_mb_s": round(enc, 2),
            "dec_mb_s": round(dec, 2),
            "floor_enc_mb_s": floors[0],
            "floor_dec_mb_s": floors[1],
            "arena_reuse_ratio": round(stream.stats.reuse_ratio, 3),
        }
        rows.append(
            [
                label,
                "stream",
                f"{config:.4g}",
                f"{blob.compression_ratio:.2f}",
                f"{enc:.1f} MB/s",
                f"{dec:.1f} MB/s",
            ]
        )

    benchmark(lambda: get_compressor("sz").compress(data, 1e-3 * spread))

    report(
        render_table(
            ["compressor", "path", "config", "CR", "encode", "decode"],
            rows,
            title=f"Compressor throughput on Nyx baryon density ({mb:.1f} MB)",
        )
    )

    sz_speedup = results["cold"]["sz"]["enc_mb_s"] / _SEED_BASELINE_MB_S["sz"][0]
    _JSON_PATH.write_text(
        json.dumps(
            {
                "dataset": "nyx-1/baryon_density",
                "block_mb": round(mb, 4),
                "reps": _REPS,
                "cold": results["cold"],
                "stream": results["stream"],
                "seed_baseline_mb_s": {
                    name: {"enc_mb_s": e, "dec_mb_s": d}
                    for name, (e, d) in _SEED_BASELINE_MB_S.items()
                },
                "sz_encode_speedup_vs_seed": round(sz_speedup, 2),
            },
            indent=2,
        )
        + "\n"
    )

    # Regression floors: a fused kernel that silently de-vectorizes or
    # a repack that goes quadratic must fail here, not in a paper bench.
    for name, row in results["cold"].items():
        assert row["enc_mb_s"] > row["floor_enc_mb_s"], f"{name} encode too slow"
        assert row["dec_mb_s"] > row["floor_dec_mb_s"], f"{name} decode too slow"
    for label, row in results["stream"].items():
        assert row["enc_mb_s"] > row["floor_enc_mb_s"], f"{label} stream encode too slow"
        assert row["dec_mb_s"] > row["floor_dec_mb_s"], f"{label} stream decode too slow"
        assert row["arena_reuse_ratio"] > 0.5, f"{label} arena not reusing scratch"

    # The batched-kernel acceptance bar: fused SZ encode at >= 2x the
    # seed baseline on the same block.
    assert sz_speedup >= 2.0, (
        f"sz encode {results['cold']['sz']['enc_mb_s']} MB/s is below 2x "
        f"seed ({_SEED_BASELINE_MB_S['sz'][0]} MB/s)"
    )
