"""Fig. 3 + Table I — compressibility and features across datasets.

Reproduces the joint story: RTM's tiny value range / MND / MLD / MSD
make it the most compressible application; Hurricane TC and QMCPack
sit lower. Rows show both the feature values (Table I) and the
compression ratios of all four compressors under one relative error
bound (Fig. 3).
"""

import numpy as np

from repro.compressors import get_compressor
from repro.core.features import extract_features
from repro.datasets import load_series
from repro.experiments.tables import render_table

_DATASETS = (
    ("nyx-1", "baryon_density"),
    ("qmcpack-3", "spin0"),
    ("rtm-big", "pressure"),
    ("rtm-small", "pressure"),
    ("hurricane", "TC"),
)


def test_fig03_table1(benchmark, report):
    feature_rows = []
    ratio_rows = []
    ratios_by_dataset = {}
    for name, field in _DATASETS:
        data = load_series(name, field).snapshots[-1].data
        features = extract_features(data, stride=4)
        feature_rows.append(
            [
                f"{name}/{field}",
                f"{features.value_range:.3g}",
                f"{features.mean_value:.3g}",
                f"{features.mnd:.2e}",
                f"{features.mld:.2e}",
                f"{features.msd:.2e}",
            ]
        )
        eb = 1e-3 * float(np.ptp(data))
        ratios = {}
        for comp_name in ("sz", "zfp", "mgard"):
            comp = get_compressor(comp_name)
            ratios[comp_name] = comp.compression_ratio(data, eb)
        ratios["fpzip"] = get_compressor("fpzip").compression_ratio(data, 16)
        ratios_by_dataset[f"{name}/{field}"] = ratios
        ratio_rows.append(
            [f"{name}/{field}"] + [f"{ratios[c]:.1f}" for c in ("sz", "zfp", "mgard", "fpzip")]
        )

    # Benchmark the Table I kernel: sampled feature extraction.
    data = load_series("nyx-1", "baryon_density").snapshots[0].data
    benchmark(lambda: extract_features(data, stride=4))

    report(
        render_table(
            ["dataset", "range", "mean", "MND", "MLD", "MSD"],
            feature_rows,
            title="Table I - feature values (stride-4 sampled)",
        )
        + "\n\n"
        + render_table(
            ["dataset", "SZ", "ZFP", "MGARD", "FPZIP(p=16)"],
            ratio_rows,
            title="Fig. 3 - CRs at eb = 1e-3 * value range",
        )
    )

    # Shape assertion: RTM-Big (small MND/MLD/MSD wave field) beats the
    # rough cosmology field for the error-bounded compressors.
    assert (
        ratios_by_dataset["rtm-big/pressure"]["sz"]
        > ratios_by_dataset["nyx-1/baryon_density"]["sz"]
    )
    rtm_feats = extract_features(
        load_series("rtm-big", "pressure").snapshots[-1].data, stride=4
    )
    tc_feats = extract_features(
        load_series("hurricane", "TC").snapshots[-1].data, stride=4
    )
    assert rtm_feats.value_range < tc_feats.value_range
    assert rtm_feats.msd < tc_feats.msd
