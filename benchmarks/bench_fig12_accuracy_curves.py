"""Fig. 12 — MCR vs TCR curves: FXRZ vs FRaZ(6) vs FRaZ(15).

For one test dataset per application (SZ and ZFP, as in the figure),
sweeps target ratios across the valid range and reports the measured
ratio of every strategy against the ground-truth target. Shape to
reproduce: FXRZ tracks the target closely; FRaZ-15 tracks loosely;
FRaZ-6 drifts badly, especially at low targets.
"""

import numpy as np

from conftest import BENCH_CONFIG
from repro.experiments.figures import ascii_plot
from repro.experiments.harness import accuracy_records, summarize_errors
from repro.experiments.tables import render_table

_CASES = (
    ("hurricane", "TC", "sz"),
    ("hurricane", "TC", "zfp"),
    ("rtm", "pressure", "sz"),
    ("nyx", "baryon_density", "sz"),
)


def test_fig12_mcr_vs_tcr(benchmark, report):
    sections = []
    summaries = {}
    all_records = {}
    for app, field, comp_name in _CASES:
        records = accuracy_records(
            app, field, comp_name, n_targets=6, config=BENCH_CONFIG
        )
        all_records[(app, field, comp_name)] = records
        rows = [
            [
                f"{r.target_ratio:.1f}",
                f"{r.fxrz_ratio:.1f}",
                f"{r.fraz[15].measured_ratio:.1f}",
                f"{r.fraz[6].measured_ratio:.1f}",
            ]
            for r in records
        ]
        summary = summarize_errors(records)
        summaries[(app, field, comp_name)] = summary
        targets = np.array([r.target_ratio for r in records])
        plot = ascii_plot(
            targets,
            {
                "target": targets,
                "x_fxrz": np.array([r.fxrz_ratio for r in records]),
                "15_fraz": np.array(
                    [r.fraz[15].measured_ratio for r in records]
                ),
            },
            height=10,
        )
        sections.append(
            render_table(
                ["TCR (truth)", "FXRZ MCR", "FRaZ-15 MCR", "FRaZ-6 MCR"],
                rows,
                title=(
                    f"Fig. 12 - {comp_name} on {app}/{field}: mean err "
                    f"FXRZ {summary['fxrz']:.1%} / FRaZ15 "
                    f"{summary['fraz15']:.1%} / FRaZ6 {summary['fraz6']:.1%}"
                ),
            )
            + "\n"
            + plot
        )

    # Benchmark the inference kernel on an already-trained pipeline.
    from repro.experiments.harness import get_trained_fxrz
    from repro.experiments.corpus import held_out_snapshots

    pipeline = get_trained_fxrz("hurricane", "TC", "sz", config=BENCH_CONFIG)
    data = held_out_snapshots("hurricane", "TC")[0].data
    benchmark(lambda: pipeline.estimate_config(data, 20.0))

    report("\n\n".join(sections))

    # Shape assertions, averaged across cases (as the figure reads).
    fxrz = float(np.mean([s["fxrz"] for s in summaries.values()]))
    fraz15 = float(np.mean([s["fraz15"] for s in summaries.values()]))
    fraz6 = float(np.mean([s["fraz6"] for s in summaries.values()]))
    assert fxrz < fraz6, "FXRZ must beat the 6-iteration search"
    assert fraz15 < fraz6, "more FRaZ iterations must help"
