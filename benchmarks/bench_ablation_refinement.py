"""Ablation — the accuracy/cost frontier between FXRZ and FRaZ.

An extension beyond the paper ("we plan to further improve the
accuracy by exploring other optimization strategies"): FXRZ can spend
1-2 extra compressions re-querying its own model with a miss-corrected
target. This bench maps the frontier: compressor runs spent per
request vs mean estimation error, from pure FXRZ (1 run: the final
compression itself) through refined FXRZ to FRaZ-6/15.
"""

import numpy as np

from conftest import BENCH_CONFIG
from repro.baselines.fraz import FRaZ
from repro.experiments.corpus import held_out_snapshots
from repro.experiments.harness import get_trained_fxrz, target_ratio_grid
from repro.experiments.tables import render_table

_CASES = (("hurricane", "TC", "sz"), ("nyx", "baryon_density", "sz"))


def test_ablation_refinement_frontier(benchmark, report):
    rows = []
    frontier = {}
    for refinements in (0, 1, 2):
        errors = []
        runs = []
        for app, field, comp_name in _CASES:
            pipeline = get_trained_fxrz(app, field, comp_name, config=BENCH_CONFIG)
            snapshot = held_out_snapshots(app, field)[0]
            for tcr in target_ratio_grid(pipeline.compressor, snapshot, 5):
                result = pipeline.compress_to_ratio(
                    snapshot.data, float(tcr), max_refinements=refinements
                )
                errors.append(result.estimation_error)
                runs.append(result.compressions)
        frontier[f"fxrz+{refinements}"] = (
            float(np.mean(runs)),
            float(np.mean(errors)),
        )

    for budget in (6, 15):
        errors = []
        for app, field, comp_name in _CASES:
            pipeline = get_trained_fxrz(app, field, comp_name, config=BENCH_CONFIG)
            snapshot = held_out_snapshots(app, field)[0]
            cache = {}
            for tcr in target_ratio_grid(pipeline.compressor, snapshot, 5):
                outcome = FRaZ(
                    pipeline.compressor, max_iterations=budget
                ).search(snapshot.data, float(tcr), cache=cache)
                errors.append(outcome.estimation_error)
        # FRaZ's final compression at the chosen config is one more run.
        frontier[f"fraz-{budget}"] = (budget + 1.0, float(np.mean(errors)))

    for name, (runs, err) in frontier.items():
        rows.append([name, f"{runs:.1f}", f"{err:.1%}"])

    pipeline = get_trained_fxrz("hurricane", "TC", "sz", config=BENCH_CONFIG)
    snapshot = held_out_snapshots("hurricane", "TC")[0]
    benchmark.pedantic(
        lambda: pipeline.compress_to_ratio(snapshot.data, 15.0, max_refinements=1),
        rounds=2,
        iterations=1,
    )

    report(
        render_table(
            ["strategy", "mean compressor runs", "mean estimation error"],
            rows,
            title="Ablation - accuracy vs compressor-run cost frontier",
        )
    )

    # Refinement must trade runs for accuracy monotonically-ish, and
    # refined FXRZ must dominate FRaZ-6 (fewer runs AND lower error).
    assert frontier["fxrz+1"][1] <= frontier["fxrz+0"][1] + 1e-9
    assert frontier["fxrz+2"][0] < frontier["fraz-6"][0]
    assert frontier["fxrz+2"][1] < frontier["fraz-6"][1]
