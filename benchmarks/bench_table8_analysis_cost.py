"""Table VIII — analysis time relative to compression time.

The paper's efficiency headline: FXRZ's per-request analysis (features
+ block classification + model prediction) costs a small fraction of
one compression, while FRaZ-15 costs many compressions — FXRZ ends up
~108x faster on average. The bench measures both on every
(application, compressor) pair and asserts the orders of magnitude.

The "served" column routes the same workload through the estimation
service: with the per-dataset analysis cached, each additional target
pays only the adjustment + model query, so the amortized per-request
cost must undercut the single-shot cost.
"""

import numpy as np

from conftest import BENCH_COMPRESSORS, BENCH_CONFIG, BENCH_FIELDS
from repro.experiments.harness import accuracy_records, serving_analysis_cost
from repro.experiments.tables import render_table


def test_table8_analysis_cost(benchmark, report):
    rows = []
    fxrz_costs = []
    fraz_costs = []
    served_costs = []
    for app, field in BENCH_FIELDS:
        for comp_name in BENCH_COMPRESSORS:
            records = accuracy_records(
                app, field, comp_name, n_targets=4, config=BENCH_CONFIG
            )
            compress = float(np.mean([r.compress_seconds for r in records]))
            fxrz = float(np.mean([r.fxrz_seconds for r in records])) / compress
            fraz = (
                float(np.mean([r.fraz[15].seconds for r in records])) / compress
            )
            summary = serving_analysis_cost(
                app, field, comp_name, n_targets=8, config=BENCH_CONFIG
            )
            served = summary.amortized_seconds / compress
            fxrz_costs.append(fxrz)
            fraz_costs.append(fraz)
            served_costs.append(served)
            rows.append(
                [
                    f"{app}/{field}",
                    comp_name,
                    f"{fxrz:.3f}x",
                    f"{served:.3f}x",
                    f"{fraz:.1f}x",
                    f"{fraz / fxrz:.0f}x",
                ]
            )
    avg_fxrz = float(np.mean(fxrz_costs))
    avg_fraz = float(np.mean(fraz_costs))
    avg_served = float(np.mean(served_costs))
    rows.append(
        [
            "average",
            "-",
            f"{avg_fxrz:.3f}x",
            f"{avg_served:.3f}x",
            f"{avg_fraz:.1f}x",
            f"{avg_fraz / avg_fxrz:.0f}x",
        ]
    )

    from repro.experiments.corpus import held_out_snapshots
    from repro.experiments.harness import get_trained_fxrz

    pipeline = get_trained_fxrz("hurricane", "TC", "sz", config=BENCH_CONFIG)
    data = held_out_snapshots("hurricane", "TC")[0].data
    benchmark(lambda: pipeline.estimate_config(data, 15.0))

    report(
        render_table(
            [
                "test dataset",
                "comp",
                "FXRZ analysis/compress",
                "served (amortized)",
                "FRaZ-15 analysis/compress",
                "speedup",
            ],
            rows,
            title=(
                "Table VIII - analysis cost relative to one compression "
                "(paper: FXRZ ~0.14x, FRaZ >> 1x, ~108x apart)"
            ),
        )
    )

    assert avg_fxrz < 1.0, "FXRZ analysis must undercut one compression"
    assert avg_fraz > 5.0, "FRaZ must cost many compressions"
    assert avg_fraz / avg_fxrz > 20.0, "orders-of-magnitude separation"
    assert avg_served < avg_fxrz, (
        "served amortized analysis must undercut the single-shot cost"
    )
