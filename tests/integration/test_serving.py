"""Integration tests of the estimation serving subsystem.

Covers the ISSUE's acceptance criterion end to end: a batch of 64
mixed requests served concurrently must return configurations
identical to sequential :class:`InferenceEngine` calls, with feature
cache hits and per-request latency recorded — plus the guarded-ladder
metrics plumbing and the ``estimate-batch`` CLI round trip.
"""

import json

import numpy as np
import pytest

import repro
from repro.cli import main
from repro.compressors import get_compressor
from repro.core.inference import InferenceEngine
from repro.core.persistence import save_pipeline
from repro.errors import InvalidConfiguration
from repro.serving import EstimateRequest, EstimationService, ModelRegistry

from tests.conftest import small_forest_factory

pytestmark = pytest.mark.serving


def _make_fields(n: int, side: int = 20) -> list[np.ndarray]:
    rng = np.random.default_rng(11)
    lin = np.linspace(0, 4 * np.pi, side)
    x, y, _ = np.meshgrid(lin, lin, lin, indexing="ij")
    return [
        (
            np.sin(x + 0.4 * i) * np.cos(y + 0.1 * i)
            + (0.02 + 0.01 * i) * rng.standard_normal((side,) * 3)
        ).astype(np.float32)
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def fitted():
    fields = _make_fields(7)
    config = repro.FXRZConfig(stationary_points=8, augmented_samples=60)
    pipeline = repro.FXRZ(
        get_compressor("sz"), config=config, model_factory=small_forest_factory
    )
    pipeline.fit(fields[:3])
    return pipeline, fields[3:]  # pipeline + 4 held-out probe fields


class TestServiceParity:
    def test_batch_of_64_matches_sequential_engine(self, fitted):
        pipeline, probes = fitted
        engine = InferenceEngine(
            pipeline.model, pipeline.compressor, config=pipeline.config
        )
        targets = np.linspace(3.0, 12.0, 16)
        requests = [
            EstimateRequest(data=probe, target_ratio=float(tcr))
            for probe in probes
            for tcr in targets
        ]
        assert len(requests) == 64

        with EstimationService.for_pipeline(
            pipeline, workers=4, max_batch=16
        ) as service:
            served = service.run_batch(requests)
            metrics = service.metrics

        for request, result in zip(requests, served):
            expected = engine.estimate(request.data, request.target_ratio)
            assert result.estimate.config == expected.config
            assert result.estimate.adjusted_target == expected.adjusted_target
            assert result.estimate.nonconstant == expected.nonconstant
            assert np.array_equal(result.estimate.features, expected.features)
            assert result.latency_seconds > 0

        assert metrics.requests_total == 64
        assert metrics.cache_hits > 0, "same-dataset requests must share analysis"
        assert metrics.cache_misses == 4  # one analysis per distinct dataset
        assert metrics.latency_count == 64
        assert metrics.latency_mean_ms > 0
        assert metrics.tier_counts == {"model": 64}
        assert metrics.fallback_count == 0

    def test_submit_returns_future_per_request(self, fitted):
        pipeline, probes = fitted
        with EstimationService.for_pipeline(pipeline, workers=2) as service:
            future = service.submit(
                EstimateRequest(data=probes[0], target_ratio=6.0)
            )
            served = future.result(timeout=30)
        assert served.estimate.config > 0
        assert served.request_id.startswith("req-")
        assert served.batch_size >= 1

    def test_dataset_id_coalesces_without_hashing(self, fitted):
        pipeline, probes = fitted
        requests = [
            EstimateRequest(
                data=probes[0], target_ratio=float(t), dataset_id="snap-0"
            )
            for t in (4.0, 6.0, 8.0)
        ]
        with EstimationService.for_pipeline(pipeline, workers=1) as service:
            served = service.run_batch(requests)
            metrics = service.metrics
        assert {s.dataset_key for s in served} == {"id:snap-0"}
        assert metrics.cache_misses == 1
        assert metrics.cache_hits == 2

    def test_per_request_errors_do_not_poison_the_batch(self, fitted):
        pipeline, probes = fitted
        constant = np.full((16, 16, 16), 3.0, dtype=np.float32)
        requests = [
            EstimateRequest(data=probes[0], target_ratio=6.0),
            EstimateRequest(data=constant, target_ratio=6.0),  # R = 0 -> raises
            EstimateRequest(data=probes[1], target_ratio=6.0),
        ]
        with EstimationService.for_pipeline(pipeline, workers=2) as service:
            futures = service.submit_many(requests)
            good_first = futures[0].result(timeout=30)
            with pytest.raises(InvalidConfiguration, match="entirely constant"):
                futures[1].result(timeout=30)
            good_last = futures[2].result(timeout=30)
            metrics = service.metrics
        assert good_first.estimate.config > 0
        assert good_last.estimate.config > 0
        assert metrics.requests_failed == 1
        assert metrics.requests_total == 3

    def test_closed_service_rejects_submissions(self, fitted):
        pipeline, probes = fitted
        service = EstimationService.for_pipeline(pipeline, workers=1)
        service.close()
        service.close()  # idempotent
        with pytest.raises(InvalidConfiguration, match="closed"):
            service.submit(EstimateRequest(data=probes[0], target_ratio=5.0))


class TestDeadlinesAndShutdown:
    def test_queued_request_past_deadline_fails_typed(self, fitted):
        from repro.errors import DeadlineExceededError

        pipeline, probes = fitted
        with EstimationService.for_pipeline(pipeline, workers=1) as service:
            # One worker: the doomed request sits queued behind real
            # work until well past its microscopic deadline.
            blockers = service.submit_many(
                [
                    EstimateRequest(data=probe, target_ratio=6.0)
                    for probe in probes[:3]
                ]
            )
            doomed = service.submit(
                EstimateRequest(
                    data=probes[3], target_ratio=6.0, deadline_seconds=1e-05
                )
            )
            with pytest.raises(DeadlineExceededError, match="expired"):
                doomed.result(timeout=30)
            for future in blockers:
                assert future.result(timeout=30).estimate.config > 0
            metrics = service.metrics
        assert metrics.requests_failed == 1

    def test_invalid_deadlines_rejected(self, fitted):
        pipeline, probes = fitted
        with pytest.raises(InvalidConfiguration, match="default_deadline"):
            EstimationService.for_pipeline(
                pipeline, workers=1, default_deadline=-2.0
            )
        with EstimationService.for_pipeline(pipeline, workers=1) as service:
            with pytest.raises(InvalidConfiguration, match="deadline"):
                service.submit(
                    EstimateRequest(
                        data=probes[0], target_ratio=6.0, deadline_seconds=0.0
                    )
                )

    def test_close_without_drain_rejects_queued_work(self, fitted):
        from repro.errors import ServiceClosedError

        pipeline, probes = fitted
        service = EstimationService.for_pipeline(pipeline, workers=1)
        futures = service.submit_many(
            [
                EstimateRequest(
                    data=probes[i % len(probes)], target_ratio=4.0 + 0.2 * i
                )
                for i in range(12)
            ]
        )
        service.close(drain=False)
        assert all(f.done() for f in futures), "no future may be left hanging"
        rejected = sum(
            1
            for f in futures
            if isinstance(f.exception(), ServiceClosedError)
        )
        assert rejected >= 1, "an immediate close must reject queued work"
        with pytest.raises(InvalidConfiguration, match="closed"):
            service.submit(EstimateRequest(data=probes[0], target_ratio=5.0))


class TestGuardedServing:
    def test_degradations_are_counted(self, fitted):
        pipeline, probes = fitted
        polluted = probes[0].copy()
        polluted[0, 0, 0] = np.nan  # validation patches it, confidence drops
        with EstimationService.for_pipeline(
            pipeline,
            guarded=True,
            guard_options={"fallback": "curve", "min_confidence": 0.99},
            workers=2,
        ) as service:
            served = service.estimate(polluted, 6.0)
            metrics = service.metrics
        assert served.estimate.tier != "model"
        assert served.estimate.fallback_reason
        assert metrics.fallback_count == 1
        assert sum(metrics.tier_counts.values()) == 1
        assert "model" not in metrics.tier_counts

    def test_clean_input_stays_on_model_tier(self, fitted):
        pipeline, probes = fitted
        with EstimationService.for_pipeline(
            pipeline,
            guarded=True,
            # The tiny test forest scores low spread-confidence even on
            # clean in-envelope inputs; accept any confidence so the
            # test isolates the clean-path tier accounting.
            guard_options={"min_confidence": 0.0},
            workers=1,
        ) as service:
            served = service.estimate(probes[0], 6.0)
            metrics = service.metrics
        assert served.estimate.tier == "model"
        assert metrics.tier_counts == {"model": 1}
        assert metrics.fallback_count == 0


class TestBatchCLI:
    @pytest.fixture(scope="class")
    def cli_setup(self, fitted, tmp_path_factory):
        pipeline, probes = fitted
        root = tmp_path_factory.mktemp("serve-cli")
        model = root / "model.npz"
        save_pipeline(pipeline, model)
        inputs = []
        for i, probe in enumerate(probes[:2]):
            path = root / f"probe{i}.npy"
            np.save(path, probe)
            inputs.append(str(path))
        requests = root / "requests.jsonl"
        lines = [
            json.dumps({"id": f"r{n}", "input": inp, "ratio": ratio})
            for n, (inp, ratio) in enumerate(
                (inp, ratio)
                for inp in inputs
                for ratio in (4.0, 6.0, 9.0)
            )
        ]
        requests.write_text("\n".join(lines) + "\n")
        return pipeline, root, str(model), str(requests), inputs

    def test_estimate_batch_roundtrip(self, cli_setup, capsys):
        pipeline, root, model, requests, inputs = cli_setup
        out = root / "results.jsonl"
        code = main(
            [
                "estimate-batch",
                requests,
                "--model",
                model,
                "--engine",
                "plain",
                "--output",
                str(out),
                "--stats",
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "served 6 request(s) (0 failed) over 2 dataset(s)" in stdout
        assert "-- service stats --" in stdout
        assert "feature cache" in stdout

        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(records) == 6
        for record in records:
            expected = pipeline.estimate_config(
                np.load(record["input"]), record["ratio"]
            )
            assert record["config"] == pytest.approx(expected.config)
            assert record["tier"] == "model"
            assert record["latency_ms"] > 0
        assert sum(r["cache_hit"] for r in records) >= 4

    def test_registry_backed_serving(self, cli_setup, capsys):
        pipeline, root, _, requests, _ = cli_setup
        registry_dir = root / "registry"
        ModelRegistry(registry_dir).publish(pipeline)
        code = main(
            [
                "estimate-batch",
                requests,
                "--registry",
                str(registry_dir),
                "--compressor",
                "sz",
            ]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 6
        assert all(json.loads(line)["config"] > 0 for line in lines)

    def test_bad_request_file_reports_line(self, cli_setup, capsys, tmp_path):
        _, _, model, _, _ = cli_setup
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"input": "x.npy"}\n')
        code = main(["estimate-batch", str(bad), "--model", model])
        assert code == 2
        assert 'needs "input" and "ratio"' in capsys.readouterr().err

    def test_model_or_registry_required(self, cli_setup, capsys):
        _, _, _, requests, _ = cli_setup
        code = main(["estimate-batch", requests])
        assert code == 2
        assert "--model or --registry" in capsys.readouterr().err
