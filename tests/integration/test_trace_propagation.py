"""End-to-end distributed-trace propagation through the sharded service.

The acceptance scenario from ``docs/OBSERVABILITY.md``: a request
driven through :class:`ShardedEstimationService` — including one whose
shard dies mid-request — must come back with ONE connected span tree
under a stable ``trace_id``: admission, per-generation shard attempts,
redelivery and the fallback rescue all parent back to the same request
root, and that same id is visible on the returned estimate, in the
outcome log and at the embedded ``/spans`` endpoint.
"""

import json
import time
import urllib.request

import numpy as np
import pytest

import repro
from repro import obs
from repro.compressors import get_compressor
from repro.core.persistence import save_pipeline
from repro.lifecycle import OutcomeLog, read_outcomes
from repro.robustness.faults import FaultSpec, RetryPolicy
from repro.serving import EstimateRequest, ShardedEstimationService

from tests.conftest import small_forest_factory

pytestmark = [pytest.mark.serving, pytest.mark.chaos, pytest.mark.obs]

_FAST = dict(
    poll_interval=0.01,
    retry_policy=RetryPolicy(max_attempts=5, base_delay=0.02, jitter=0.0),
    breaker_options={"failure_threshold": 4, "reset_seconds": 0.3},
)


def _make_fields(n: int, side: int = 20) -> list[np.ndarray]:
    rng = np.random.default_rng(11)
    lin = np.linspace(0, 4 * np.pi, side)
    x, y, _ = np.meshgrid(lin, lin, lin, indexing="ij")
    return [
        (
            np.sin(x + 0.4 * i) * np.cos(y + 0.1 * i)
            + (0.02 + 0.01 * i) * rng.standard_normal((side,) * 3)
        ).astype(np.float32)
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def fitted():
    fields = _make_fields(5)
    config = repro.FXRZConfig(stationary_points=8, augmented_samples=60)
    pipeline = repro.FXRZ(
        get_compressor("sz"), config=config, model_factory=small_forest_factory
    )
    pipeline.fit(fields[:3])
    return pipeline, fields[3:]


@pytest.fixture(scope="module")
def model_path(fitted, tmp_path_factory):
    pipeline, _ = fitted
    path = tmp_path_factory.mktemp("tracing") / "model.fxrz"
    save_pipeline(pipeline, path)
    return str(path)


def _wait_ready(service, want: int | None = None, timeout: float = 30.0):
    want = service.n_shards if want is None else want
    give_up = time.monotonic() + timeout
    while time.monotonic() < give_up:
        states = service.shard_states()
        if sum(s["state"] == "ready" for s in states) >= want:
            return states
        time.sleep(0.02)
    raise AssertionError(
        f"{want} shard(s) never became ready: {service.shard_states()}"
    )


def _trace_spans(tracer, trace_id):
    return [s for s in tracer.spans if s.trace_id == trace_id]


def _assert_connected(spans):
    """Every span must parent to another span of the same trace (one
    root excepted) — i.e. the trace is a single connected tree."""
    ids = {s.span_id for s in spans}
    roots = [s for s in spans if s.parent_id is None]
    assert len(roots) == 1, [s.name for s in roots]
    for span in spans:
        if span.parent_id is not None:
            assert span.parent_id in ids, (
                f"{span.name} dangles: parent {span.parent_id} not in trace"
            )
    return roots[0]


class TestHappyPathPropagation:
    def test_shard_spans_reparent_under_request_root(
        self, fitted, model_path, tmp_path
    ):
        pipeline, probes = fitted
        log_path = tmp_path / "outcomes.jsonl"
        with obs.session() as (tracer, _registry):
            with OutcomeLog(log_path) as log:
                with ShardedEstimationService(
                    pipeline,
                    shards=1,
                    model_path=model_path,
                    scrape_port=0,
                    outcome_log=log,
                    **_FAST,
                ) as service:
                    _wait_ready(service)
                    served = service.estimate(probes[0], 6.0)
                    scrape = service.scrape_url
                    assert scrape is not None
                    with urllib.request.urlopen(
                        f"{scrape}/spans?trace={served.trace_id}", timeout=5
                    ) as response:
                        exported = [
                            json.loads(line)
                            for line in response.read().decode().splitlines()
                        ]

        # One stable id on every surface of the reply.
        assert served.trace_id != 0
        assert served.estimate.trace_id == served.trace_id

        spans = _trace_spans(tracer, served.trace_id)
        root = _assert_connected(spans)
        assert root.name == "serving.sharded.request"
        names = {s.name for s in spans}
        assert {"supervisor.admit", "supervisor.dispatch",
                "shard.serve"} <= names

        # The shard's span crossed the fork boundary: recorded in the
        # child process, re-parented under the supervisor's request.
        shard_span = next(s for s in spans if s.name == "shard.serve")
        assert shard_span.pid != root.pid
        assert shard_span.parent_id == root.span_id
        assert shard_span.attributes["generation"] == 1
        assert shard_span.attributes["tier"] == served.estimate.tier

        # ... and the scrape endpoint serves the very same tree.
        assert {s["span_id"] for s in exported} >= {s.span_id for s in spans}

        # ... and the outcome log carries the id for offline joins.
        replay = read_outcomes(log_path)
        [record] = replay.records
        assert record.trace_id == served.trace_id
        assert record.source == "shard"


class TestChaosTraceSurvivesShardDeath:
    def test_fallback_span_lands_under_original_trace(
        self, fitted, model_path, tmp_path
    ):
        pipeline, probes = fitted
        faults = FaultSpec(seed=11, poison_request_prob=0.4)
        poison_id = next(
            rid
            for rid in (f"poison-{i}" for i in range(64))
            if faults.is_poison(rid)
        )
        log_path = tmp_path / "outcomes.jsonl"
        with obs.session() as (tracer, _registry):
            with OutcomeLog(log_path) as log:
                with ShardedEstimationService(
                    pipeline,
                    shards=2,
                    model_path=model_path,
                    faults=faults,
                    max_redeliveries=1,
                    outcome_log=log,
                    **_FAST,
                ) as service:
                    _wait_ready(service)
                    served = service.submit(
                        EstimateRequest(
                            data=probes[0],
                            target_ratio=6.0,
                            request_id=poison_id,
                        )
                    ).result(timeout=120.0)
                    # Let supervision finish the story: the poisoned
                    # shard's death must be followed by a respawn.
                    give_up = time.monotonic() + 30.0
                    while (
                        service.stats.respawns < 1
                        and time.monotonic() < give_up
                    ):
                        time.sleep(0.02)
                    stats = service.stats

        assert served.estimate.config > 0
        assert served.trace_id != 0
        assert stats.redelivered >= 1 and stats.fallbacks >= 1

        spans = _trace_spans(tracer, served.trace_id)
        root = _assert_connected(spans)
        assert root.name == "serving.sharded.request"
        assert root.status == "ok"

        # The poison bounced: >= 2 dispatch attempts, distinct
        # (shard, generation) coordinates on each.
        dispatches = [s for s in spans if s.name == "supervisor.dispatch"]
        assert len(dispatches) >= 2
        attempts = {
            (s.attributes["shard"], s.attributes["generation"])
            for s in dispatches
        }
        assert len(attempts) >= 2

        # The redelivery decision is an event in the same trace.
        redelivers = [s for s in spans if s.name == "supervisor.redeliver"]
        assert redelivers
        assert all(s.attributes["generation"] >= 1 for s in redelivers)

        # The rescue ran under the original trace, labelled with the
        # generation of the attempt it rescued.
        fallback = next(
            s for s in spans if s.name == "serving.sharded.fallback"
        )
        assert fallback.parent_id == root.span_id
        assert fallback.attributes["request_id"] == poison_id
        assert fallback.attributes["generation"] >= 1
        assert fallback.attributes["redeliveries"] >= 1

        # Shard deaths show up as supervision events (their own traces:
        # respawns are service-level, not request-level)...
        all_names = {s.name for s in tracer.spans}
        assert "supervisor.respawn" in all_names

        # ...while the outcome log joins the request by the same id.
        replay = read_outcomes(log_path)
        [record] = replay.records
        assert record.trace_id == served.trace_id
        assert record.source == "fallback"
