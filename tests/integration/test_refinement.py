"""Tests of the refinement extension to compress_to_ratio."""

import numpy as np
import pytest

import repro
from repro.compressors import get_compressor
from repro.config import FXRZConfig

from tests.conftest import small_forest_factory


@pytest.fixture(scope="module")
def pipeline_and_test():
    rng = np.random.default_rng(21)
    lin = np.linspace(0, 4 * np.pi, 24)
    x, y, z = np.meshgrid(lin, lin, lin, indexing="ij")
    fields = [
        (np.sin(x + 0.4 * i) * np.cos(y) + 0.04 * rng.standard_normal((24,) * 3))
        .astype(np.float32)
        for i in range(4)
    ]
    config = FXRZConfig(stationary_points=10, augmented_samples=80)
    pipeline = repro.FXRZ(
        get_compressor("sz"), config=config, model_factory=small_forest_factory
    )
    pipeline.fit(fields[:3])
    return pipeline, fields[3]


class TestRefinement:
    def test_zero_refinements_is_one_compression(self, pipeline_and_test):
        pipeline, data = pipeline_and_test
        result = pipeline.compress_to_ratio(data, 8.0)
        assert result.compressions == 1

    def test_refinement_never_worse(self, pipeline_and_test):
        pipeline, data = pipeline_and_test
        for tcr in (4.0, 8.0, 15.0):
            base = pipeline.compress_to_ratio(data, tcr)
            refined = pipeline.compress_to_ratio(data, tcr, max_refinements=2)
            assert refined.estimation_error <= base.estimation_error + 1e-12
            assert refined.compressions <= 3

    def test_refinement_stops_at_tolerance(self, pipeline_and_test):
        pipeline, data = pipeline_and_test
        result = pipeline.compress_to_ratio(
            data, 8.0, max_refinements=5, tolerance=1.0
        )
        # 100% tolerance: the first answer always satisfies it.
        assert result.compressions == 1

    def test_refined_blob_is_valid(self, pipeline_and_test):
        pipeline, data = pipeline_and_test
        result = pipeline.compress_to_ratio(data, 10.0, max_refinements=2)
        recon = pipeline.compressor.decompress(result.blob)
        assert recon.shape == data.shape
        pipeline.compressor.verify(data, recon, result.blob.config)

    def test_trained_ratio_range_brackets_requests(self, pipeline_and_test):
        pipeline, data = pipeline_and_test
        lo, hi = pipeline.trained_ratio_range(data)
        assert 1.0 <= lo < hi
