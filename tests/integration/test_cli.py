"""Integration tests of the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main, read_blob, write_blob
from repro.compressors import get_compressor
from repro.errors import ReproError


@pytest.fixture(scope="module")
def npy_files(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli-data")
    rng = np.random.default_rng(4)
    lin = np.linspace(0, 4 * np.pi, 20)
    x, y, z = np.meshgrid(lin, lin, lin, indexing="ij")
    paths = []
    for i in range(2):
        data = (
            np.sin(x + 0.3 * i) * np.cos(y)
            + 0.03 * rng.standard_normal((20,) * 3)
        ).astype(np.float32)
        path = root / f"train{i}.npy"
        np.save(path, data)
        paths.append(str(path))
    test_data = (np.sin(x + 0.9) * np.cos(y) + 0.05 * rng.standard_normal((20,) * 3)).astype(np.float32)
    test_path = root / "test.npy"
    np.save(test_path, test_data)
    return paths, str(test_path), root


class TestBlobContainer:
    def test_roundtrip(self, tmp_path, smooth_field3d):
        comp = get_compressor("sz")
        blob = comp.compress(smooth_field3d, 0.01)
        path = tmp_path / "x.fxrz"
        write_blob(blob, path)
        restored = read_blob(path)
        assert restored.compressor == "sz"
        assert restored.original_shape == smooth_field3d.shape
        recon = comp.decompress(restored)
        assert np.array_equal(recon, comp.decompress(blob))

    def test_rejects_non_blob(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"not a blob at all")
        with pytest.raises(ReproError):
            read_blob(path)


class TestCommands:
    def test_full_workflow(self, npy_files, capsys):
        train_paths, test_path, root = npy_files
        model = str(root / "model.npz")
        blob = str(root / "out.fxrz")
        recon = str(root / "recon.npy")

        assert main(
            ["train", *train_paths, "--model", model,
             "--stationary-points", "8", "--augmented-samples", "50"]
        ) == 0
        assert "trained on 2 arrays" in capsys.readouterr().out

        assert main(["estimate", test_path, "--model", model, "--ratio", "6"]) == 0
        assert "estimated config" in capsys.readouterr().out

        assert main(
            ["compress", test_path, "--model", model, "--ratio", "6",
             "--output", blob]
        ) == 0
        out = capsys.readouterr().out
        assert "measured" in out

        assert main(["decompress", blob, "--output", recon]) == 0
        capsys.readouterr()
        original = np.load(test_path)
        reconstructed = np.load(recon)
        assert reconstructed.shape == original.shape

    @pytest.mark.objective
    def test_quality_objective_workflow(self, npy_files, capsys, tmp_path):
        train_paths, test_path, root = npy_files
        model = str(root / "model-q.npz")
        assert main(
            ["train", *train_paths, "--model", model,
             "--stationary-points", "8", "--augmented-samples", "50"]
        ) == 0
        capsys.readouterr()

        assert main(
            ["estimate", test_path, "--model", model, "--target-psnr", "50"]
        ) == 0
        out = capsys.readouterr().out
        assert "psnr:50" in out

        blob = str(tmp_path / "q.fxrz")
        assert main(
            ["compress", test_path, "--model", model, "--target-psnr", "50",
             "--output", blob]
        ) == 0
        out = capsys.readouterr().out
        assert "psnr:50" in out and "measured" in out

        assert main(
            ["estimate", test_path, "--model", model, "--frontier", "cr>=4"]
        ) == 0
        out = capsys.readouterr().out
        assert "frontier(cr>=4)" in out

        assert main(
            ["estimate", test_path, "--model", model]
        ) == 2  # no target given

    @pytest.mark.objective
    def test_estimate_batch_objective_grammar(
        self, npy_files, capsys, tmp_path
    ):
        train_paths, test_path, root = npy_files
        model = str(root / "model-q2.npz")
        assert main(
            ["train", *train_paths, "--model", model,
             "--stationary-points", "8", "--augmented-samples", "50"]
        ) == 0
        capsys.readouterr()

        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            "\n".join(
                [
                    '{"input": "%s", "ratio": 6.0, "id": "r1"}' % test_path,
                    '{"input": "%s", "objective": "psnr:50", "id": "q1"}'
                    % test_path,
                ]
            )
            + "\n"
        )
        output = tmp_path / "results.jsonl"
        assert main(
            ["estimate-batch", str(requests), "--model", model,
             "--engine", "plain", "--workers", "1",
             "--output", str(output)]
        ) == 0
        capsys.readouterr()
        rows = [
            json.loads(line)
            for line in output.read_text().splitlines()
            if line
        ]
        assert len(rows) == 2
        by_id = {row["id"]: row for row in rows}
        assert by_id["r1"]["objective"] == "ratio:6"
        assert by_id["q1"]["objective"] == "psnr:50"
        assert by_id["q1"]["config"] > 0

    def test_search_command(self, npy_files, capsys):
        _, test_path, _ = npy_files
        assert main(
            ["search", test_path, "--ratio", "5", "--iterations", "6"]
        ) == 0
        assert "FRaZ(6)" in capsys.readouterr().out

    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "nyx-1" in out and "hurricane" in out

    def test_export_command(self, tmp_path, capsys):
        out_dir = tmp_path / "exported"
        assert main(
            ["export", "qmcpack-1", "spin0", "--out", str(out_dir)]
        ) == 0
        capsys.readouterr()
        files = list(out_dir.glob("*.npy"))
        assert len(files) == 1
        data = np.load(files[0])
        assert data.ndim == 4

    def test_error_paths_return_nonzero(self, npy_files, capsys):
        _, test_path, root = npy_files
        bogus_model = str(root / "missing.npz")
        np.savez(bogus_model, junk=np.arange(3))
        code = main(
            ["estimate", test_path, "--model", bogus_model, "--ratio", "5"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


@pytest.mark.runtime
class TestRuntimeTeardown:
    """A failing subcommand must not leak workers or shared memory.

    The pre-runtime CLI built its ParallelExecutor per subcommand with
    no teardown path: an exception between pool creation and the end of
    the command left worker processes (and any shared-memory segments a
    map was using) alive. main() now funnels every command through one
    RuntimeContext whose close() runs in a finally, so failure paths
    tear down exactly like successes.
    """

    @staticmethod
    def _shm_segments():
        import pathlib

        shm = pathlib.Path("/dev/shm")
        if not shm.is_dir():  # pragma: no cover - non-Linux fallback
            return set()
        return {p.name for p in shm.glob("psm_*")}

    def test_failing_command_tears_down_runtime(self, npy_files, capsys):
        import multiprocessing

        from repro import cli
        from repro.errors import InvalidConfiguration

        _, test_path, root = npy_files
        bogus_model = str(root / "leak-model.npz")
        np.savez(bogus_model, junk=np.arange(3))
        before = self._shm_segments()
        code = main(
            ["estimate", test_path, "--model", bogus_model, "--ratio", "5",
             "--jobs", "2"]
        )
        capsys.readouterr()
        assert code == 2
        ctx = cli._LAST_CONTEXT
        assert ctx is not None and ctx.closed
        # The pool the context would have used is gone, not orphaned.
        assert multiprocessing.active_children() == []
        assert self._shm_segments() <= before
        # And the context refuses to hand out resources post-mortem.
        with pytest.raises(InvalidConfiguration, match="closed RuntimeContext"):
            ctx.executor

    def test_successful_parallel_command_tears_down(self, npy_files, capsys):
        import multiprocessing

        from repro import cli

        _, test_path, _ = npy_files
        before = self._shm_segments()
        assert main(
            ["search", test_path, "--ratio", "5", "--iterations", "6",
             "--jobs", "2"]
        ) == 0
        capsys.readouterr()
        ctx = cli._LAST_CONTEXT
        assert ctx is not None and ctx.closed
        executor = ctx._executor
        from repro.parallel.executor import available_cpus

        if available_cpus() > 1:
            assert executor is not None and executor.closed
        else:
            # The auto backend clamps --jobs to the CPUs actually
            # available: on a 1-CPU host the context never builds a
            # pool, so there is nothing to tear down.
            assert executor is None
        assert multiprocessing.active_children() == []
        assert self._shm_segments() <= before


@pytest.mark.obs
class TestObservabilityFlags:
    @pytest.fixture(scope="class")
    def model(self, npy_files):
        train_paths, _, root = npy_files
        model = str(root / "obs-model.npz")
        assert main(
            ["train", *train_paths, "--model", model,
             "--stationary-points", "8", "--augmented-samples", "50"]
        ) == 0
        return model

    def test_estimate_trace_and_metrics(self, npy_files, model, tmp_path, capsys):
        from repro import obs

        _, test_path, _ = npy_files
        trace = str(tmp_path / "trace.jsonl")
        metrics = str(tmp_path / "metrics.txt")
        assert main(
            ["estimate", test_path, "--model", model, "--ratio", "6",
             "--trace", trace, "--metrics", metrics]
        ) == 0
        captured = capsys.readouterr()
        assert "estimated config" in captured.out
        assert f"wrote" in captured.err and trace in captured.err
        # main() must restore the disabled state for in-process callers.
        assert obs.get_tracer() is None and obs.get_registry() is None

        spans = obs.load_trace(trace)
        names = {s.name for s in spans}
        for phase in (
            "cli.estimate",
            "guarded.estimate",
            "guarded.analyze",
            "features.extract",
            "guarded.confidence",
            "guarded.tier",
        ):
            assert phase in names
        # Every phase hangs off the single command-root span.
        [root_span] = [s for s in spans if s.parent_id is None]
        assert root_span.name == "cli.estimate"

        text = open(metrics).read()
        assert "repro_guarded_tier_total" in text

    def test_obs_report_renders_cost_tree(self, npy_files, model, tmp_path, capsys):
        _, test_path, _ = npy_files
        trace = str(tmp_path / "report-trace.jsonl")
        assert main(
            ["estimate", test_path, "--model", model, "--ratio", "6",
             "--trace", trace]
        ) == 0
        capsys.readouterr()
        assert main(["obs-report", trace]) == 0
        out = capsys.readouterr().out
        assert "phase" in out and "wall" in out
        assert "cli.estimate" in out
        assert "features.extract" in out

    def test_trace_flag_on_search(self, npy_files, tmp_path, capsys):
        from repro import obs

        _, test_path, _ = npy_files
        trace = str(tmp_path / "search-trace.jsonl")
        metrics = str(tmp_path / "search-metrics.txt")
        assert main(
            ["search", test_path, "--ratio", "5", "--iterations", "6",
             "--trace", trace, "--metrics", metrics]
        ) == 0
        capsys.readouterr()
        names = {s.name for s in obs.load_trace(trace)}
        assert "fraz.search" in names and "fraz.probe" in names
        text = open(metrics).read()
        assert "repro_fraz_searches_total 1" in text
        assert 'repro_fraz_probes_total{source="run"}' in text

    def test_train_trace_records_profiled_fit(self, npy_files, tmp_path, capsys):
        from repro import obs

        train_paths, _, _ = npy_files
        model = str(tmp_path / "m.npz")
        trace = str(tmp_path / "train-trace.jsonl")
        assert main(
            ["train", *train_paths, "--model", model,
             "--stationary-points", "6", "--augmented-samples", "40",
             "--trace", trace]
        ) == 0
        capsys.readouterr()
        spans = obs.load_trace(trace)
        [fit] = [s for s in spans if s.name == "training.fit"]
        assert fit.attributes["n_datasets"] == 2
        assert "rss_after_bytes" in fit.attributes
        assert any(s.name == "augmentation.build_curve" for s in spans)
        assert any(s.name == "compressor.compress" for s in spans)
