"""Integration tests of the experiment harness on real registry data."""

import numpy as np
import pytest

from repro.compressors import get_compressor
from repro.config import FXRZConfig
from repro.datasets.registry import load_series
from repro.experiments.harness import (
    accuracy_records,
    clear_caches,
    get_trained_fxrz,
    summarize_errors,
    target_ratio_grid,
)

_FAST = FXRZConfig(stationary_points=10, augmented_samples=80)


@pytest.fixture(autouse=True, scope="module")
def _isolated_caches():
    clear_caches()
    yield
    clear_caches()


class TestHarness:
    def test_trained_pipeline_cached(self):
        a = get_trained_fxrz("hurricane", "TC", "sz", config=_FAST)
        b = get_trained_fxrz("hurricane", "TC", "sz", config=_FAST)
        assert a is b

    def test_target_grid_is_ascending(self):
        comp = get_compressor("sz")
        snap = load_series("hurricane", "TC").snapshots[-1]
        grid = target_ratio_grid(comp, snap, 6)
        assert grid.size == 6
        assert (np.diff(grid) > 0).all()

    def test_accuracy_records_structure(self):
        records = accuracy_records(
            "hurricane", "TC", "sz", n_targets=3, config=_FAST
        )
        assert len(records) == 3
        for record in records:
            assert record.application == "hurricane"
            assert record.fxrz_error >= 0
            assert set(record.fraz) == {6, 15}
            assert record.fraz[15].iterations <= 15
            assert record.compress_seconds > 0

    def test_headline_ordering(self):
        """FXRZ accuracy >= FRaZ-15 >= FRaZ-6, cost the reverse."""
        records = accuracy_records(
            "hurricane", "TC", "sz", n_targets=5, config=_FAST
        )
        summary = summarize_errors(records)
        assert summary["fxrz"] < summary["fraz6"]
        mean_fxrz_cost = np.mean([r.fxrz_seconds for r in records])
        mean_fraz_cost = np.mean([r.fraz[15].seconds for r in records])
        assert mean_fraz_cost > 10 * mean_fxrz_cost

    def test_summarize_empty(self):
        assert summarize_errors([]) == {}
