"""Chaos tests of the fault-tolerant sharded estimation service.

The invariant pinned throughout: **every admitted request's future
resolves** — with a result, a typed error or a deadline — no matter
which shards crash, hang or eat poison mid-load. The scenarios mirror
``docs/ROBUSTNESS.md``: backpressure shedding, deadline expiry, seeded
crash storms with supervisor kills, hang detection, poison-request
escape down the degradation ladder, and clean teardown custody of the
shared-memory transport.
"""

import time
from concurrent.futures import wait

import numpy as np
import pytest

import repro
from repro.compressors import get_compressor
from repro.core.inference import InferenceEngine
from repro.core.persistence import save_pipeline
from repro.errors import (
    DeadlineExceededError,
    InvalidConfiguration,
    ServiceClosedError,
    ServiceOverloadedError,
    ShardFailedError,
)
from repro.parallel.shm import SharedNDArray
from repro.robustness.faults import NO_RETRY, FaultSpec, RetryPolicy
from repro.runtime import RuntimeContext
from repro.serving import (
    CircuitBreaker,
    EstimateRequest,
    ShardedEstimationService,
)

from tests.conftest import small_forest_factory

pytestmark = [pytest.mark.serving, pytest.mark.chaos]

#: Tight supervision knobs so the chaos scenarios converge in test time.
_FAST = dict(
    poll_interval=0.01,
    retry_policy=RetryPolicy(max_attempts=5, base_delay=0.02, jitter=0.0),
    breaker_options={"failure_threshold": 4, "reset_seconds": 0.3},
)


def _make_fields(n: int, side: int = 20) -> list[np.ndarray]:
    rng = np.random.default_rng(11)
    lin = np.linspace(0, 4 * np.pi, side)
    x, y, _ = np.meshgrid(lin, lin, lin, indexing="ij")
    return [
        (
            np.sin(x + 0.4 * i) * np.cos(y + 0.1 * i)
            + (0.02 + 0.01 * i) * rng.standard_normal((side,) * 3)
        ).astype(np.float32)
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def fitted():
    fields = _make_fields(7)
    config = repro.FXRZConfig(stationary_points=8, augmented_samples=60)
    pipeline = repro.FXRZ(
        get_compressor("sz"), config=config, model_factory=small_forest_factory
    )
    pipeline.fit(fields[:3])
    return pipeline, fields[3:]


@pytest.fixture(scope="module")
def model_path(fitted, tmp_path_factory):
    """One serialized replica shared by every service in the module."""
    pipeline, _ = fitted
    path = tmp_path_factory.mktemp("shards") / "model.fxrz"
    save_pipeline(pipeline, path)
    return str(path)


def _wait_ready(service, want: int | None = None, timeout: float = 30.0):
    want = service.n_shards if want is None else want
    give_up = time.monotonic() + timeout
    while time.monotonic() < give_up:
        states = service.shard_states()
        if sum(s["state"] == "ready" for s in states) >= want:
            return states
        time.sleep(0.02)
    raise AssertionError(
        f"{want} shard(s) never became ready: {service.shard_states()}"
    )


class TestCircuitBreaker:
    def test_trips_open_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_seconds=60.0)
        assert breaker.state == "closed"
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.would_allow() and not breaker.allow()
        assert breaker.retry_after() > 0

    def test_half_open_probe_is_single_admission(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=0.05)
        breaker.record_failure()
        assert breaker.state == "open"
        time.sleep(0.06)
        assert breaker.state == "half-open"
        assert breaker.would_allow()
        assert breaker.allow()  # consumes the probe slot
        assert not breaker.would_allow() and not breaker.allow()

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=0.05)
        breaker.record_failure()
        time.sleep(0.06)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.retry_after() == 0.0
        assert breaker.allow() and breaker.allow()  # no probe limit closed

    def test_probe_failure_reopens_full_window(self):
        breaker = CircuitBreaker(failure_threshold=5, reset_seconds=0.05)
        for _ in range(5):
            breaker.record_failure()
        time.sleep(0.06)
        assert breaker.allow()
        breaker.record_failure()  # the probe itself failed
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_validation(self):
        with pytest.raises(InvalidConfiguration):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(InvalidConfiguration):
            CircuitBreaker(reset_seconds=-1.0)


class TestShardedParity:
    def test_results_match_sequential_engine(self, fitted, model_path):
        pipeline, probes = fitted
        engine = InferenceEngine(
            pipeline.model, pipeline.compressor, config=pipeline.config
        )
        requests = [
            EstimateRequest(data=probe, target_ratio=float(tcr))
            for probe in probes[:2]
            for tcr in (4.0, 6.0, 9.0)
        ]
        with ShardedEstimationService(
            pipeline,
            shards=2,
            model_path=model_path,
            guarded=False,
            **_FAST,
        ) as service:
            _wait_ready(service)
            served = service.run_batch(requests, timeout=60.0)
            metrics = service.metrics
            stats = service.stats

        for request, result in zip(requests, served):
            expected = engine.estimate(request.data, request.target_ratio)
            assert result.estimate.config == expected.config
            assert result.estimate.adjusted_target == expected.adjusted_target
            assert result.latency_seconds > 0
        assert stats.admitted == stats.completed == len(requests)
        assert stats.shed == stats.failed == stats.expired == 0
        assert metrics.requests_total == len(requests)
        assert metrics.latency_count == len(requests)

    def test_estimate_convenience_and_shard_view(self, fitted, model_path):
        pipeline, probes = fitted
        with ShardedEstimationService(
            pipeline, shards=1, model_path=model_path, **_FAST
        ) as service:
            states = _wait_ready(service)
            assert states[0]["generation"] == 1
            assert states[0]["breaker"] == "closed"
            assert states[0]["pid"] is not None
            served = service.estimate(probes[0], 6.0)
        assert served.estimate.config > 0
        assert served.request_id.startswith("req-")
        assert served.batch_size == 1

    def test_ctx_supplies_supervision_defaults(self, fitted, model_path):
        pipeline, _ = fitted
        with RuntimeContext(
            env={}, deadline=3.0, breaker_failures=2, breaker_reset=0.25
        ) as ctx:
            service = ShardedEstimationService(
                pipeline, shards=1, model_path=model_path, ctx=ctx
            )
            try:
                assert service.default_deadline == 3.0
                breaker = service.slots[0].breaker
                assert breaker.failure_threshold == 2
                assert breaker.reset_seconds == 0.25
            finally:
                service.close(drain=False, timeout=5.0)


class TestBackpressure:
    def test_overload_sheds_with_retry_hint(self, fitted, model_path):
        pipeline, probes = fitted
        with ShardedEstimationService(
            pipeline,
            shards=1,
            queue_depth=2,
            max_inflight_per_shard=1,
            model_path=model_path,
            **_FAST,
        ) as service:
            _wait_ready(service)
            futures, hints = [], []
            for i in range(40):
                try:
                    futures.append(
                        service.submit(
                            EstimateRequest(
                                data=probes[0],
                                target_ratio=4.0 + 0.1 * i,
                                dataset_id="burst",
                            )
                        )
                    )
                except ServiceOverloadedError as exc:
                    hints.append(exc.retry_after)
            done, not_done = wait(futures, timeout=60.0)
            stats = service.stats
        assert hints, "a 40-deep burst into a 2-deep queue must shed"
        assert all(hint > 0 for hint in hints)
        assert not not_done, "every admitted future must resolve"
        assert stats.shed == len(hints)
        assert stats.admitted == len(futures)
        assert all(f.result().estimate.config > 0 for f in done)

    def test_closed_service_rejects_submissions(self, fitted, model_path):
        pipeline, probes = fitted
        service = ShardedEstimationService(
            pipeline, shards=1, model_path=model_path, **_FAST
        )
        service.close(drain=False, timeout=5.0)
        service.close()  # idempotent
        with pytest.raises(ServiceClosedError, match="closed"):
            service.submit(EstimateRequest(data=probes[0], target_ratio=5.0))
        # back-compat: same family the plain service raises when closed
        assert issubclass(ServiceClosedError, InvalidConfiguration)


class TestDeadlines:
    def test_expired_request_fails_typed(self, fitted, model_path):
        pipeline, probes = fitted
        with ShardedEstimationService(
            pipeline, shards=1, model_path=model_path, **_FAST
        ) as service:
            _wait_ready(service)
            future = service.submit(
                EstimateRequest(
                    data=probes[0],
                    target_ratio=6.0,
                    deadline_seconds=2e-05,  # expires before any shard reply
                )
            )
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=30.0)
            stats = service.stats
        assert stats.expired == 1
        assert stats.completed == 0

    def test_invalid_deadlines_rejected(self, fitted, model_path):
        pipeline, probes = fitted
        with pytest.raises(InvalidConfiguration, match="default_deadline"):
            ShardedEstimationService(
                pipeline, shards=1, model_path=model_path, default_deadline=-1.0
            )
        with ShardedEstimationService(
            pipeline, shards=1, model_path=model_path, **_FAST
        ) as service:
            with pytest.raises(InvalidConfiguration, match="deadline"):
                service.submit(
                    EstimateRequest(
                        data=probes[0], target_ratio=6.0, deadline_seconds=0.0
                    )
                )


class TestChaosCrashStorm:
    """The ISSUE's acceptance scenario: >= 2 shards die mid-load."""

    def test_all_admitted_requests_survive_shard_deaths(
        self, fitted, model_path
    ):
        pipeline, probes = fitted
        faults = FaultSpec(seed=7, worker_crash_prob=0.25)
        with ShardedEstimationService(
            pipeline,
            shards=3,
            model_path=model_path,
            faults=faults,
            max_redeliveries=4,
            **_FAST,
        ) as service:
            _wait_ready(service)
            futures = []
            for i in range(30):
                futures.append(
                    service.submit(
                        EstimateRequest(
                            data=probes[i % len(probes)],
                            target_ratio=4.0 + 0.25 * (i % 16),
                        )
                    )
                )
                if i == 5:
                    service.kill_shard(0)  # supervised kill #1 mid-load
                if i == 15:
                    service.kill_shard(1)  # supervised kill #2 mid-load
            done, not_done = wait(futures, timeout=120.0)
            stats = service.stats

        assert not not_done, (
            f"hung futures under chaos: {len(not_done)} unresolved "
            f"(stats={stats})"
        )
        results = [f.result() for f in done]  # raises if any future failed
        assert len(results) == 30
        assert stats.admitted == stats.completed == 30
        assert stats.failed == 0 and stats.expired == 0
        assert stats.kills >= 2, "both supervised kills must be recorded"
        assert stats.respawns >= 2, "killed shards must come back"
        # After the storm the topology heals: every shard serving again.
        assert all(f.result().estimate.config > 0 for f in done)


class TestHangDetection:
    def test_hung_shard_is_killed_and_request_recovers(
        self, fitted, model_path
    ):
        pipeline, probes = fitted
        faults = FaultSpec(seed=3, worker_hang_prob=0.9, hang_seconds=30.0)
        with ShardedEstimationService(
            pipeline,
            shards=1,
            model_path=model_path,
            faults=faults,
            hang_timeout=0.5,
            heartbeat_timeout=2.0,
            max_redeliveries=0,  # first redelivery goes to the ladder
            **_FAST,
        ) as service:
            _wait_ready(service)
            tick = time.monotonic()
            served = service.submit(
                EstimateRequest(
                    data=probes[0], target_ratio=6.0, deadline_seconds=20.0
                )
            ).result(timeout=60.0)
            elapsed = time.monotonic() - tick
            stats = service.stats
        assert served.estimate.config > 0
        assert stats.kills >= 1, "the wedged shard must be killed"
        assert stats.fallbacks >= 1, "the orphan resolves on the ladder"
        assert elapsed < 20.0, "recovery must beat the hang duration"


class TestPoisonRequests:
    def test_poison_exhausts_redeliveries_then_degrades(
        self, fitted, model_path
    ):
        pipeline, probes = fitted
        faults = FaultSpec(seed=11, poison_request_prob=0.4)
        poison_id = next(
            rid
            for rid in (f"poison-{i}" for i in range(64))
            if faults.is_poison(rid)
        )
        clean_id = next(
            rid
            for rid in (f"clean-{i}" for i in range(64))
            if not faults.is_poison(rid)
        )
        with ShardedEstimationService(
            pipeline,
            shards=2,
            model_path=model_path,
            faults=faults,
            max_redeliveries=2,
            **_FAST,
        ) as service:
            _wait_ready(service)
            poison = service.submit(
                EstimateRequest(
                    data=probes[0], target_ratio=6.0, request_id=poison_id
                )
            )
            served = poison.result(timeout=120.0)
            clean = service.submit(
                EstimateRequest(
                    data=probes[1], target_ratio=6.0, request_id=clean_id
                )
            ).result(timeout=120.0)
            stats = service.stats
        assert served.request_id == poison_id
        assert served.estimate.config > 0
        assert stats.redelivered >= 2, "poison must bounce between shards"
        assert stats.fallbacks >= 1, "the cap routes poison to the ladder"
        assert stats.respawns >= 1
        assert clean.estimate.config > 0


class TestDegradationLadder:
    def test_all_shards_failed_routes_to_fallback(self, fitted, model_path):
        pipeline, probes = fitted
        with ShardedEstimationService(
            pipeline,
            shards=1,
            model_path=model_path,
            retry_policy=NO_RETRY,  # first death is final -> FAILED
            poll_interval=0.01,
            breaker_options={"failure_threshold": 1, "reset_seconds": 30.0},
        ) as service:
            _wait_ready(service)
            service.kill_shard(0)
            give_up = time.monotonic() + 10.0
            while time.monotonic() < give_up:
                if service.shard_states()[0]["state"] == "failed":
                    break
                time.sleep(0.02)
            assert service.shard_states()[0]["state"] == "failed"
            served = service.estimate(probes[0], 6.0)
            stats = service.stats
        assert served.estimate.config > 0
        assert stats.fallbacks >= 1
        assert served.estimate.tier in ("model", "curve", "fraz")

    def test_disabled_fallback_fails_typed(self, fitted, model_path):
        pipeline, probes = fitted
        with ShardedEstimationService(
            pipeline,
            shards=1,
            model_path=model_path,
            retry_policy=NO_RETRY,
            fallback=False,
            poll_interval=0.01,
            breaker_options={"failure_threshold": 1, "reset_seconds": 30.0},
        ) as service:
            _wait_ready(service)
            service.kill_shard(0)
            give_up = time.monotonic() + 10.0
            while time.monotonic() < give_up:
                if service.shard_states()[0]["state"] == "failed":
                    break
                time.sleep(0.02)
            future = service.submit(
                EstimateRequest(data=probes[0], target_ratio=6.0)
            )
            with pytest.raises(ShardFailedError):
                future.result(timeout=60.0)


class TestCloseSemantics:
    def test_drain_false_resolves_everything(self, fitted, model_path):
        pipeline, probes = fitted
        service = ShardedEstimationService(
            pipeline, shards=1, max_inflight_per_shard=1,
            model_path=model_path, **_FAST,
        )
        _wait_ready(service)
        futures = [
            service.submit(
                EstimateRequest(data=probes[0], target_ratio=4.0 + 0.1 * i)
            )
            for i in range(16)
        ]
        service.close(drain=False, timeout=5.0)
        assert all(f.done() for f in futures), "no future may be left hanging"
        rejected = 0
        for future in futures:
            exc = future.exception()
            if exc is not None:
                assert isinstance(exc, ServiceClosedError)
                rejected += 1
        assert rejected >= 1, "an immediate close must reject queued work"

    def test_segments_unlinked_and_ctx_custody_released(
        self, fitted, model_path
    ):
        pipeline, probes = fitted
        with RuntimeContext(env={}) as ctx:
            service = ShardedEstimationService(
                pipeline, shards=1, model_path=model_path, ctx=ctx, **_FAST
            )
            _wait_ready(service)
            service.estimate(probes[0], 6.0)
            descriptors = [
                handle.descriptor for handle in service._segments.values()
            ]
            assert descriptors, "serving a request must create a segment"
            service.close()
            for descriptor in descriptors:
                with pytest.raises(FileNotFoundError):
                    SharedNDArray.attach(descriptor)
            ctx.close()
            # custody was released at service close: the context found
            # nothing left to unlink at its own teardown.
            assert not any(
                "shared-memory" in note for note in ctx.teardown_notes
            )
