"""Tests for tiled fixed-ratio compression."""

import numpy as np
import pytest

import repro
from repro.compressors import get_compressor
from repro.core.tiling import TiledFixedRatio, tile_grid
from repro.errors import InvalidConfiguration, NotFittedError

from tests.conftest import small_forest_factory


class TestTileGrid:
    def test_exact_cover(self):
        grid = tile_grid((8, 12), (4, 4))
        assert len(grid) == 2 * 3
        covered = np.zeros((8, 12), dtype=int)
        for _, slices in grid:
            covered[slices] += 1
        assert (covered == 1).all()

    def test_border_tiles_shrink(self):
        grid = tile_grid((10,), (4,))
        sizes = [s[0].stop - s[0].start for _, s in grid]
        assert sizes == [4, 4, 2]

    def test_rank_mismatch_rejected(self):
        with pytest.raises(InvalidConfiguration):
            tile_grid((8, 8), (4,))

    def test_bad_tile_rejected(self):
        with pytest.raises(InvalidConfiguration):
            tile_grid((8,), (0,))


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(31)
    lin = np.linspace(0, 4 * np.pi, 24)
    x, y, z = np.meshgrid(lin, lin, lin, indexing="ij")
    fields = [
        (np.sin(x + 0.3 * i) * np.cos(y) + 0.04 * rng.standard_normal((24,) * 3))
        .astype(np.float32)
        for i in range(3)
    ]
    config = repro.FXRZConfig(stationary_points=8, augmented_samples=60)
    pipeline = repro.FXRZ(
        get_compressor("sz"), config=config, model_factory=small_forest_factory
    )
    pipeline.fit(fields[:2])
    return pipeline, fields[2]


class TestTiledCompression:
    def test_roundtrip_preserves_shape_and_bound(self, fitted):
        pipeline, data = fitted
        tiled = TiledFixedRatio(pipeline, (12, 12, 12))
        result = tiled.compress(data, 6.0)
        assert len(result.tiles) == 8
        recon = tiled.decompress(result)
        assert recon.shape == data.shape
        # Each tile honored its own error bound; check globally against
        # the loosest per-tile bound.
        worst = max(t.blob.config for t in result.tiles)
        err = np.max(np.abs(data.astype(np.float64) - recon))
        assert err <= worst * (1 + 1e-6) + 1e-6 * np.abs(data).max()

    def test_aggregate_ratio_near_target(self, fitted):
        pipeline, data = fitted
        tiled = TiledFixedRatio(pipeline, (12, 12, 12))
        result = tiled.compress(data, 6.0)
        assert result.estimation_error < 0.8
        assert result.measured_ratio > 1.0

    def test_tiles_get_individual_configs(self, fitted):
        pipeline, data = fitted
        # Make one corner constant: its tile should get a different
        # (cheaper) configuration than the busy tiles.
        patched = data.copy()
        patched[:12, :12, :12] = patched.mean()
        tiled = TiledFixedRatio(pipeline, (12, 12, 12))
        result = tiled.compress(patched, 6.0)
        configs = {t.index: t.blob.config for t in result.tiles}
        assert len(set(configs.values())) > 1

    def test_unfitted_pipeline_rejected(self):
        pipeline = repro.FXRZ(get_compressor("sz"))
        with pytest.raises(NotFittedError):
            TiledFixedRatio(pipeline, (8, 8, 8))

    def test_bad_target_rejected(self, fitted):
        pipeline, data = fitted
        tiled = TiledFixedRatio(pipeline, (12, 12, 12))
        with pytest.raises(InvalidConfiguration):
            tiled.compress(data, 0.0)
