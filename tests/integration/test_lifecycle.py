"""End-to-end tests of the online learning loop.

Covers the ISSUE's acceptance scenario: a drifted workload trips the
drift detector, the background retrainer fits candidates without
blocking serving, the canary promotes the winner, and the promoted
model beats the frozen incumbent on the held-out outcome slice. Plus
the supervision plumbing: parent-side outcome recording under a shard
crash storm must never tear a JSONL line, and the supervisor's
breaker/late-reply state must surface as ``repro_serving_*`` gauges.
"""

import json
from concurrent.futures import wait

import numpy as np
import pytest

import repro
from repro.cli import main
from repro.compressors import get_compressor
from repro.core.persistence import save_pipeline
from repro.lifecycle import (
    BackgroundRetrainer,
    DriftDetector,
    OutcomeLog,
    OutcomeRecord,
    read_outcomes,
)
from repro.robustness.faults import FaultSpec, RetryPolicy
from repro.runtime import RuntimeContext
from repro.serving import (
    EstimateRequest,
    LATEST,
    ModelRegistry,
    ShardedEstimationService,
)

from tests.conftest import small_forest_factory
from tests.integration.test_sharded_serving import _wait_ready

pytestmark = pytest.mark.lifecycle

_FAST = dict(
    poll_interval=0.01,
    retry_policy=RetryPolicy(max_attempts=5, base_delay=0.02, jitter=0.0),
    breaker_options={"failure_threshold": 4, "reset_seconds": 0.3},
)


def _smooth_fields(n: int, side: int = 20) -> list[np.ndarray]:
    rng = np.random.default_rng(7)
    lin = np.linspace(0, 4 * np.pi, side)
    x, y, _ = np.meshgrid(lin, lin, lin, indexing="ij")
    return [
        (np.sin(x + 0.3 * i) * np.cos(y) + 0.03 * rng.standard_normal((side,) * 3))
        .astype(np.float32)
        for i in range(n)
    ]


def _noisy_fields(n: int, side: int = 16) -> list[np.ndarray]:
    """A drifted workload: pure noise, nothing like the training corpus."""
    rng = np.random.default_rng(23)
    return [
        rng.standard_normal((side,) * 3).astype(np.float32) for _ in range(n)
    ]


@pytest.fixture(scope="module")
def fitted():
    fields = _smooth_fields(4)
    config = repro.FXRZConfig(stationary_points=8, augmented_samples=60)
    pipeline = repro.FXRZ(
        get_compressor("sz"), config=config, model_factory=small_forest_factory
    )
    pipeline.fit(fields[:2])
    return pipeline, fields[2:]


@pytest.fixture(scope="module")
def model_path(fitted, tmp_path_factory):
    pipeline, _ = fitted
    path = tmp_path_factory.mktemp("lifecycle") / "model.fxrz"
    save_pipeline(pipeline, path)
    return str(path)


def _measured_outcomes(
    pipeline, fields, targets, *, log=None, detector=None
) -> list[OutcomeRecord]:
    """Serve each (field, target), measure the true ratio, record it."""
    compressor = pipeline.compressor
    records = []
    for i, field in enumerate(fields):
        for target in targets:
            estimate = pipeline.estimate_config(field, target)
            measured = compressor.compression_ratio(field, estimate.config)
            record = OutcomeRecord.from_estimate(
                estimate,
                dataset_key=f"drift-{i}",
                compressor=compressor.name,
                measured_ratio=measured,
                source="test",
            )
            records.append(record)
            if log is not None:
                log.record(record)
            if detector is not None:
                detector.observe(record)
    return records


class TestCanaryEndToEnd:
    def test_drift_retrain_promote_improves(self, fitted, tmp_path):
        pipeline, _ = fitted
        registry = ModelRegistry(tmp_path / "reg")
        incumbent = registry.publish(pipeline)

        detector = DriftDetector.for_pipeline(
            pipeline, window=64, min_samples=8, hysteresis=3
        )
        log_path = tmp_path / "outcomes.jsonl"
        with OutcomeLog(log_path) as log:
            _measured_outcomes(
                pipeline,
                _noisy_fields(6),
                (5.0, 8.0, 11.0),
                log=log,
                detector=detector,
            )
        assert detector.drifting, (
            f"a pure-noise workload must trip the detector: "
            f"{detector.snapshot}"
        )

        replay = read_outcomes(log_path)
        assert replay.torn_lines == 0
        retrainer = BackgroundRetrainer(
            registry,
            "sz",
            detector=detector,
            min_samples=10_000,  # volume alone must NOT be the trigger
            canary_fraction=0.25,
            oversample=4,
            n_candidates=2,
        )
        assert retrainer.maybe_trigger(replay.records)

        # Serving never blocks: the incumbent keeps answering while the
        # candidate fits on the background thread.
        probe = _noisy_fields(1)[0]
        served = 0
        while retrainer.busy and served < 50:
            estimate = pipeline.estimate_config(probe, 8.0)
            assert estimate.config > 0
            served += 1
        assert retrainer.wait(timeout=300)
        assert retrainer.last_error is None

        result = retrainer.last_result
        assert result.triggered_by == "drift"
        assert result.candidate.version == incumbent.version + 1
        assert result.report.promote, result.report.reason
        assert result.promoted is not None
        assert result.report.candidate_error < result.report.incumbent_error
        latest = registry.resolve("sz", None, LATEST)
        assert latest.version == result.candidate.version
        # The manifest remembers the flip, so rollback can undo it.
        history = registry.history("sz")
        assert history[-1]["action"] == "promote"
        assert history[-1]["previous"] == incumbent.version
        # The window described the old model; it must refill from zero.
        assert detector.state == "stable"
        assert detector.snapshot.samples == 0

    def test_retrained_model_serves_drifted_workload_better(
        self, fitted, tmp_path
    ):
        """Fresh estimates (not just the canary replay) must improve."""
        pipeline, _ = fitted
        registry = ModelRegistry(tmp_path / "reg")
        incumbent = registry.publish(pipeline)
        probes = _noisy_fields(8)
        records = _measured_outcomes(pipeline, probes[:6], (5.0, 8.0, 11.0))

        retrainer = BackgroundRetrainer(
            registry, "sz", min_samples=4, canary_fraction=0.25, oversample=4
        )
        result = retrainer.retrain(records)
        assert result.promoted is not None, result.reason

        frozen = registry.load("sz", incumbent.fingerprint, incumbent.version)
        promoted = registry.load("sz", None, LATEST)

        def median_error(serving) -> float:
            errors = []
            for field in probes[6:]:
                for target in (6.0, 9.0):
                    estimate = serving.estimate_config(field, target)
                    measured = serving.compressor.compression_ratio(
                        field, estimate.config
                    )
                    errors.append(abs(measured - target) / target)
            return float(np.median(errors))

        assert median_error(promoted) < median_error(frozen), (
            "the promoted model must hit drifted targets the frozen "
            "incumbent misses"
        )


@pytest.mark.chaos
class TestSupervisedOutcomeRecording:
    def test_parent_side_log_and_gauges(self, fitted, model_path, tmp_path):
        pipeline, probes = fitted
        log_path = tmp_path / "outcomes.jsonl"
        with RuntimeContext(
            env={},
            metrics=str(tmp_path / "metrics.json"),
            outcome_log=str(log_path),
        ) as ctx:
            with ShardedEstimationService(
                pipeline,
                shards=2,
                model_path=model_path,
                ctx=ctx,
                **_FAST,
            ) as service:
                _wait_ready(service)
                requests = [
                    EstimateRequest(data=probe, target_ratio=float(t))
                    for probe in probes
                    for t in (5.0, 8.0)
                ]
                served = service.run_batch(requests, timeout=120.0)
                text = ctx.registry.render_prometheus()
            assert len(served) == len(requests)
            assert 'repro_serving_supervisor_events{event="completed"}' in text
            assert "repro_serving_late_replies" in text
            assert 'repro_serving_breaker_state{shard="0"} 0' in text
            assert 'repro_serving_shard_ready{shard="1"} 1' in text
        replay = read_outcomes(log_path)
        assert replay.torn_lines == 0
        assert len(replay.records) == len(requests)
        assert {r.source for r in replay.records} == {"shard"}
        assert all(r.compressor == "sz" for r in replay.records)

    def test_crash_storm_never_tears_a_line(self, fitted, model_path, tmp_path):
        """Shards die mid-load; the parent-side log stays line-atomic."""
        pipeline, probes = fitted
        log_path = tmp_path / "outcomes.jsonl"
        faults = FaultSpec(seed=7, worker_crash_prob=0.25)
        with OutcomeLog(log_path) as log:
            with ShardedEstimationService(
                pipeline,
                shards=3,
                model_path=model_path,
                faults=faults,
                max_redeliveries=4,
                outcome_log=log,
                **_FAST,
            ) as service:
                _wait_ready(service)
                futures = []
                for i in range(30):
                    futures.append(
                        service.submit(
                            EstimateRequest(
                                data=probes[i % len(probes)],
                                target_ratio=4.0 + 0.25 * (i % 16),
                            )
                        )
                    )
                    if i == 5:
                        service.kill_shard(0)
                    if i == 15:
                        service.kill_shard(1)
                done, not_done = wait(futures, timeout=120.0)
                stats = service.stats
        assert not not_done and len(done) == 30
        assert stats.completed == 30
        replay = read_outcomes(log_path)
        assert replay.torn_lines == 0, (
            "shard deaths must never tear an outcome line"
        )
        assert len(replay.records) == 30
        for line in log_path.read_text().splitlines():
            json.loads(line)  # every surviving line is complete JSON
        # Requests rescued by the degradation ladder are labeled so.
        assert {r.source for r in replay.records} <= {"shard", "fallback"}


class TestGuardedRecording:
    def test_guarded_engine_records_explicit_log_only(self, fitted, tmp_path):
        pipeline, probes = fitted
        log_path = tmp_path / "guarded.jsonl"
        with OutcomeLog(log_path) as log:
            engine = pipeline.guarded(outcome_log=log)
            estimate = engine.estimate(probes[0], 8.0, dataset_key="probe-0")
        assert estimate.config > 0
        replay = read_outcomes(log_path)
        assert len(replay.records) == 1
        record = replay.records[0]
        assert record.source == "guarded"
        assert record.dataset_key == "probe-0"
        assert record.tier == estimate.tier


class TestLifecycleCLI:
    def test_estimate_and_compress_write_outcome_log(
        self, fitted, model_path, tmp_path
    ):
        """The single-shot CLI paths must honor ``--outcome-log``."""
        _, probes = fitted
        data_path = tmp_path / "probe.npy"
        np.save(data_path, probes[0])
        log_path = tmp_path / "cli.jsonl"
        common = ["--model", model_path, "--outcome-log", str(log_path)]
        assert main(["estimate", str(data_path), "--ratio", "6", *common]) == 0
        assert (
            main(
                [
                    "compress",
                    str(data_path),
                    "--ratio",
                    "6",
                    "--output",
                    str(tmp_path / "probe.fxrz"),
                    *common,
                ]
            )
            == 0
        )
        replay = read_outcomes(log_path)
        assert [r.source for r in replay.records] == ["guarded", "compress"]
        assert all(r.dataset_key == str(data_path) for r in replay.records)
        assert replay.records[0].measured_ratio is None
        assert replay.records[1].trainable

    def test_outcomes_report_and_retrain_roundtrip(
        self, fitted, tmp_path, capsys
    ):
        pipeline, _ = fitted
        registry_root = tmp_path / "reg"
        registry = ModelRegistry(registry_root)
        registry.publish(pipeline)
        log_path = tmp_path / "outcomes.jsonl"
        with OutcomeLog(log_path) as log:
            _measured_outcomes(
                pipeline, _noisy_fields(4), (5.0, 9.0), log=log
            )

        assert main(["outcomes-report", str(log_path)]) == 0
        out = capsys.readouterr().out
        assert "8 record(s)" in out
        assert "8 trainable" in out
        assert "median relative CR error" in out

        assert (
            main(
                [
                    "retrain",
                    "--registry",
                    str(registry_root),
                    "--outcomes",
                    str(log_path),
                    "--min-samples",
                    "4",
                    "--no-promote",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "candidate: sz/" in out
        # --no-promote: the candidate is published but latest stays put.
        assert registry.resolve("sz", None, LATEST).version == 1
        versions = [e.version for e in registry.entries()]
        assert 2 in versions
