"""End-to-end tests of quality objectives through the serving stack.

The acceptance path: a PSNR-targeted request flows service -> engine ->
quality model, the measured PSNR lands within the canary margin, the
objective is visible in the trace spans and in the outcome-log rows,
and ratio-mode serving stays bit-identical to direct engine calls.
"""

import numpy as np
import pytest

import repro
from repro import obs
from repro.analysis.distortion import psnr
from repro.compressors import get_compressor
from repro.core.inference import InferenceEngine
from repro.core.objective import PSNRTarget, RatioTarget, SSIMTarget
from repro.errors import InvalidConfiguration
from repro.lifecycle import OutcomeLog, quality_errors, read_outcomes
from repro.serving import EstimateRequest, EstimationService, resolved_objective

from tests.conftest import small_forest_factory

pytestmark = pytest.mark.objective


def _make_fields(n: int, side: int = 20) -> list[np.ndarray]:
    rng = np.random.default_rng(23)
    lin = np.linspace(0, 4 * np.pi, side)
    x, y, _ = np.meshgrid(lin, lin, lin, indexing="ij")
    return [
        (
            np.sin(x + 0.4 * i) * np.cos(y + 0.1 * i)
            + (0.02 + 0.01 * i) * rng.standard_normal((side,) * 3)
        ).astype(np.float32)
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def fitted():
    fields = _make_fields(4)
    config = repro.FXRZConfig(stationary_points=8, augmented_samples=60)
    pipeline = repro.FXRZ(
        get_compressor("sz"), config=config, model_factory=small_forest_factory
    )
    pipeline.fit(fields[:2])
    return pipeline, fields[2:]


class TestResolvedObjective:
    def test_ratio_request_resolves(self, fitted):
        _, probes = fitted
        request = EstimateRequest(data=probes[0], target_ratio=8.0)
        assert resolved_objective(request) == RatioTarget(8.0)

    def test_objective_request_resolves(self, fitted):
        _, probes = fitted
        request = EstimateRequest(data=probes[0], objective="psnr:55")
        assert resolved_objective(request) == PSNRTarget(55.0)

    def test_both_rejected(self, fitted):
        _, probes = fitted
        request = EstimateRequest(
            data=probes[0], target_ratio=8.0, objective="psnr:55"
        )
        with pytest.raises(InvalidConfiguration):
            resolved_objective(request)


class TestServiceObjectives:
    def test_psnr_objective_served_within_margin(self, fitted):
        pipeline, probes = fitted
        target = 50.0
        with EstimationService.for_pipeline(
            pipeline, guarded=False, workers=2
        ) as service:
            served = service.submit(
                EstimateRequest(data=probes[0], objective=f"psnr:{target:g}")
            ).result()
        assert served.estimate.objective == PSNRTarget(target)
        assert served.estimate.tier in ("analytic", "probe")
        recon, _ = pipeline.compressor.roundtrip(
            probes[0], served.estimate.config
        )
        assert abs(psnr(probes[0], recon) - target) < 3.0

    def test_ssim_objective_served(self, fitted):
        pipeline, probes = fitted
        with EstimationService.for_pipeline(
            pipeline, guarded=False, workers=2
        ) as service:
            served = service.submit(
                EstimateRequest(data=probes[0], objective=SSIMTarget(0.97))
            ).result()
        assert served.estimate.objective == SSIMTarget(0.97)
        assert served.estimate.config > 0

    def test_mixed_batch_keeps_ratio_parity(self, fitted):
        """Quality traffic in the queue must not change ratio answers."""
        pipeline, probes = fitted
        engine = InferenceEngine(
            pipeline.model, pipeline.compressor, config=pipeline.config
        )
        requests = [
            EstimateRequest(data=probes[i % 2], target_ratio=float(tcr))
            if i % 3
            else EstimateRequest(data=probes[i % 2], objective="psnr:50")
            for i, tcr in enumerate(np.linspace(3.0, 12.0, 12))
        ]
        with EstimationService.for_pipeline(
            pipeline, guarded=False, workers=3
        ) as service:
            served = service.run_batch(requests)
        for request, result in zip(requests, served):
            if request.objective is not None:
                assert result.estimate.objective == PSNRTarget(50.0)
                continue
            expected = engine.estimate(request.data, request.target_ratio)
            assert result.estimate.config == expected.config
            assert np.array_equal(result.estimate.features, expected.features)

    def test_invalid_objective_rejected_at_submit(self, fitted):
        pipeline, probes = fitted
        with EstimationService.for_pipeline(pipeline, workers=1) as service:
            with pytest.raises(InvalidConfiguration):
                service.submit(
                    EstimateRequest(data=probes[0], objective="vibes:11")
                )


class TestObjectiveObservability:
    def test_objective_rides_trace_spans(self, fitted):
        pipeline, probes = fitted
        tracer = obs.Tracer()
        obs.install(tracer=tracer)
        try:
            with EstimationService.for_pipeline(
                pipeline, guarded=False, workers=1
            ) as service:
                service.submit(
                    EstimateRequest(data=probes[0], objective="psnr:50")
                ).result()
            spans = tracer.drain()
        finally:
            obs.uninstall()
        request_spans = [s for s in spans if s.name == "serving.request"]
        assert request_spans
        assert any(
            s.attributes.get("objective") == "psnr:50" for s in request_spans
        )

    def test_objective_lands_in_outcome_rows(self, fitted, tmp_path):
        pipeline, probes = fitted
        log_path = tmp_path / "outcomes.jsonl"
        log = OutcomeLog(log_path)
        engine = pipeline.guarded(fallback="curve", outcome_log=log)
        engine.estimate(probes[0], dataset_key="probe-0", objective="psnr:50")
        engine.estimate(probes[0], 8.0, dataset_key="probe-0")
        log.close()

        replay = read_outcomes(log_path)
        assert len(replay.records) == 2
        quality = [r for r in replay.records if r.objective_kind == "psnr"]
        ratio = [r for r in replay.records if r.objective_kind == "ratio"]
        assert len(quality) == 1 and len(ratio) == 1
        assert quality[0].objective == "psnr:50"
        assert quality[0].objective_value == 50.0
        if quality[0].measured_psnr is not None:
            # The probe rung measured the truth: within the canary margin.
            misses = quality_errors(replay.records)
            assert misses and misses[0] < 3.0

    def test_compress_to_objective_records_measured_psnr(
        self, fitted, tmp_path
    ):
        pipeline, probes = fitted
        with repro.RuntimeContext(
            outcome_log=str(tmp_path / "o.jsonl")
        ) as ctx:
            scoped = repro.FXRZ(
                get_compressor("sz"), config=pipeline.config, ctx=ctx
            )
            scoped._training = pipeline._training
            scoped._inference = InferenceEngine(
                pipeline.model,
                scoped.compressor,
                config=pipeline.config,
                ctx=ctx,
            )
            result = scoped.compress_to_objective(probes[1], "psnr:50")
        assert result.measured_psnr is not None
        assert abs(result.measured_psnr - 50.0) < 3.0
        assert np.isnan(result.estimation_error)
        replay = read_outcomes(tmp_path / "o.jsonl")
        assert replay.records
        row = replay.records[-1]
        assert row.objective == "psnr:50"
        assert row.measured_psnr == pytest.approx(result.measured_psnr)
