"""Smoke test: the quickstart example must run end-to-end.

Only the quickstart runs here (the other examples share its machinery
but train more pipelines); `--quick` keeps it to tens of seconds.
"""

import pathlib
import subprocess
import sys

_EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


class TestQuickstart:
    def test_quickstart_quick_mode(self):
        result = subprocess.run(
            [sys.executable, str(_EXAMPLES / "quickstart.py"), "--quick"],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert "mean estimation error" in result.stdout
        assert "trained in" in result.stdout
