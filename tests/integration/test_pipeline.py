"""End-to-end FXRZ pipeline tests across all four compressors."""

import numpy as np
import pytest

import repro
from repro.compressors import get_compressor
from repro.config import FXRZConfig
from repro.errors import InvalidConfiguration, NotFittedError

from tests.conftest import small_forest_factory


@pytest.fixture(scope="module")
def corpus():
    """Three related training fields + one held-out field."""
    rng = np.random.default_rng(9)
    lin = np.linspace(0, 4 * np.pi, 24)
    x, y, z = np.meshgrid(lin, lin, lin, indexing="ij")
    fields = []
    for i in range(4):
        noise = rng.standard_normal((24, 24, 24))
        fields.append(
            (
                np.sin(x + 0.4 * i) * np.cos(y - 0.2 * i)
                + (0.02 + 0.015 * i) * noise
            ).astype(np.float32)
        )
    return fields[:3], fields[3]


_FAST = FXRZConfig(stationary_points=10, augmented_samples=80)


@pytest.mark.parametrize("name", ["sz", "zfp", "mgard", "fpzip"])
class TestEndToEnd:
    def test_fit_then_fix_ratio(self, corpus, name):
        train, test = corpus
        pipeline = repro.FXRZ(
            get_compressor(name), config=_FAST, model_factory=small_forest_factory
        )
        report = pipeline.fit(train)
        assert report.n_datasets == 3
        assert pipeline.is_fitted

        lo = max(min(c.ratio_range[0] for c in pipeline.curves) * 1.3, 1.6)
        hi = min(c.ratio_range[1] for c in pipeline.curves) * 0.7
        if hi <= lo:
            hi = lo * 1.5
        errors = []
        for tcr in np.linspace(lo, hi, 4):
            result = pipeline.compress_to_ratio(test, float(tcr))
            assert result.measured_ratio > 0
            errors.append(result.estimation_error)
            # The blob must reconstruct fine.
            recon = pipeline.compressor.decompress(result.blob)
            assert recon.shape == test.shape
        assert float(np.mean(errors)) < 0.6  # sane accuracy even tiny-config


class TestPipelineContract:
    def test_estimate_before_fit_raises(self, corpus):
        train, test = corpus
        pipeline = repro.FXRZ(get_compressor("sz"), config=_FAST)
        with pytest.raises(NotFittedError):
            pipeline.estimate_config(test, 10.0)

    def test_empty_fit_rejected(self):
        pipeline = repro.FXRZ(get_compressor("sz"), config=_FAST)
        with pytest.raises(InvalidConfiguration):
            pipeline.fit([])

    def test_domains_must_pair(self, corpus):
        train, _ = corpus
        pipeline = repro.FXRZ(get_compressor("sz"), config=_FAST)
        with pytest.raises(InvalidConfiguration):
            pipeline.fit(train, domains=[None])

    def test_training_report_totals(self, corpus):
        train, _ = corpus
        pipeline = repro.FXRZ(
            get_compressor("sz"), config=_FAST, model_factory=small_forest_factory
        )
        report = pipeline.fit(train)
        assert report.total_seconds == pytest.approx(
            report.stationary_seconds
            + report.augmentation_seconds
            + report.fit_seconds
        )

    def test_analysis_much_cheaper_than_compression(self, corpus):
        """The headline claim, in miniature: inference never runs the
        compressor, so it is far cheaper than one compression."""
        import time

        train, test = corpus
        pipeline = repro.FXRZ(
            get_compressor("sz"), config=_FAST, model_factory=small_forest_factory
        )
        pipeline.fit(train)
        estimate = pipeline.estimate_config(test, 8.0)
        tick = time.perf_counter()
        pipeline.compressor.compress(test, estimate.config)
        compress_seconds = time.perf_counter() - tick
        assert estimate.analysis_seconds < compress_seconds
