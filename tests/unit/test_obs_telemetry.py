"""Telemetry-plane unit tests: ring sampler, SLO burn, scrape server,
trace exporters.

Covers the :class:`TimeSeriesBuffer` frame/delta mechanics (label-set
aggregation, counter-reset tolerance, histogram deltas, window
eviction), the declarative SLO set (availability, latency-threshold,
gauge-threshold) with burn-rate/alerting semantics and the
``repro_slo_*`` collector export, the embedded scrape endpoint's four
routes, and the Chrome ``trace_event`` / folded-stacks exporters.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.errors import InvalidConfiguration

pytestmark = pytest.mark.obs


@pytest.fixture()
def registry():
    return obs.MetricsRegistry()


def _fetch(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.read().decode("utf-8")


class TestTimeSeriesBuffer:
    def test_validation(self, registry):
        with pytest.raises(InvalidConfiguration):
            obs.TimeSeriesBuffer(registry, capacity=1)
        with pytest.raises(InvalidConfiguration):
            obs.TimeSeriesBuffer(registry, interval=0.0)

    def test_capacity_evicts_oldest(self, registry):
        registry.gauge("repro_test_level").set(1.0)
        buf = obs.TimeSeriesBuffer(registry, capacity=5)
        for i in range(8):
            buf.sample(unix=float(i))
        assert len(buf) == 5
        assert buf.frames()[0].unix == 3.0
        assert buf.latest().unix == 7.0

    def test_delta_aggregates_label_sets(self, registry):
        counter = registry.counter("repro_test_requests_total")
        buf = obs.TimeSeriesBuffer(registry, capacity=10)
        counter.inc(3, outcome="ok")
        buf.sample(unix=100.0)
        counter.inc(2, outcome="ok")
        counter.inc(1, outcome="error")
        buf.sample(unix=101.0)
        total = buf.delta("repro_test_requests_total", 60.0)
        assert total == pytest.approx(3.0)
        ok = buf.delta(
            "repro_test_requests_total", 60.0, labels={"outcome": "ok"}
        )
        assert ok == pytest.approx(2.0)

    def test_delta_tolerates_counter_reset(self, registry):
        # A gauge stands in for a counter that restarted mid-window:
        # the post-reset value is counted, never a negative delta.
        gauge = registry.gauge("repro_test_restarts_total")
        buf = obs.TimeSeriesBuffer(registry, capacity=10)
        gauge.set(10.0)
        buf.sample(unix=0.0)
        gauge.set(4.0)
        buf.sample(unix=1.0)
        assert buf.delta("repro_test_restarts_total", 60.0) == 4.0

    def test_delta_without_history_is_zero(self, registry):
        buf = obs.TimeSeriesBuffer(registry, capacity=10)
        assert buf.delta("repro_test_requests_total", 60.0) == 0.0
        buf.sample(unix=0.0)
        assert buf.delta("repro_test_requests_total", 60.0) == 0.0

    def test_histogram_delta(self, registry):
        hist = registry.histogram(
            "repro_test_seconds", buckets=(0.1, 1.0)
        )
        buf = obs.TimeSeriesBuffer(registry, capacity=10)
        hist.observe(0.05)
        buf.sample(unix=0.0)
        hist.observe(0.5)
        hist.observe(5.0)  # overflow: only in count
        buf.sample(unix=1.0)
        delta = buf.histogram_delta("repro_test_seconds", 60.0)
        assert delta["counts"] == [0.0, 1.0]
        assert delta["count"] == 2.0
        assert delta["sum"] == pytest.approx(5.5)
        assert buf.histogram_delta("repro_test_other", 60.0) is None

    def test_window_and_series(self, registry):
        gauge = registry.gauge("repro_test_level")
        buf = obs.TimeSeriesBuffer(registry, capacity=10)
        for i in range(5):
            gauge.set(float(i))
            buf.sample(unix=float(i * 10))
        assert len(buf.window(20.0)) == 3  # unix 20, 30, 40
        points = buf.series("repro_test_level")
        assert [p.value for p in points] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_sampler_thread_runs_and_stops(self, registry):
        registry.gauge("repro_test_level").set(1.0)
        buf = obs.TimeSeriesBuffer(registry, capacity=10, interval=0.01)
        buf.start()
        try:
            deadline = 200
            while len(buf) < 2 and deadline:
                deadline -= 1
                import time

                time.sleep(0.01)
            assert len(buf) >= 2
        finally:
            buf.stop()

    def test_to_dict_is_json_serializable(self, registry):
        registry.counter("repro_test_total").inc()
        buf = obs.TimeSeriesBuffer(registry, capacity=10)
        buf.sample(unix=0.0)
        buf.sample(unix=1.0)
        dump = json.dumps(buf.to_dict())
        assert "repro_test_total" in dump


class TestSLOs:
    def _traffic(self, registry, ok: int, error: int):
        counter = registry.counter("repro_serving_requests_total")
        buf = obs.TimeSeriesBuffer(registry, capacity=10)
        buf.sample(unix=0.0)
        if ok:
            counter.inc(ok, outcome="ok")
        if error:
            counter.inc(error, outcome="error")
        buf.sample(unix=10.0)
        return buf

    def test_availability_burn_and_alert(self, registry):
        buf = self._traffic(registry, ok=9, error=1)
        slo = obs.AvailabilitySLO(objective=0.9, window=60.0)
        status = slo.evaluate(buf)
        assert status.compliance == pytest.approx(0.9)
        # error rate 0.1 against a 0.1 budget: burning exactly at rate.
        assert status.burn_rate == pytest.approx(1.0)
        assert status.alerting
        assert status.events == 10.0

    def test_no_traffic_is_compliant(self, registry):
        buf = obs.TimeSeriesBuffer(registry, capacity=10)
        buf.sample(unix=0.0)
        buf.sample(unix=1.0)
        status = obs.AvailabilitySLO(window=60.0).evaluate(buf)
        assert status.compliance == 1.0
        assert status.burn_rate == 0.0
        assert not status.alerting

    def test_perfect_objective_has_infinite_burn(self, registry):
        buf = self._traffic(registry, ok=9, error=1)
        status = obs.AvailabilitySLO(objective=1.0, window=60.0).evaluate(buf)
        assert status.burn_rate == float("inf")
        assert status.alerting

    def test_latency_threshold_counts_buckets(self, registry):
        hist = registry.histogram(
            "repro_serving_latency_seconds", buckets=(0.1, 0.25, 1.0)
        )
        buf = obs.TimeSeriesBuffer(registry, capacity=10)
        buf.sample(unix=0.0)
        for value in (0.05, 0.2, 0.9):
            hist.observe(value, outcome="ok")
        buf.sample(unix=10.0)
        slo = obs.LatencySLO(
            objective=0.5, threshold_seconds=0.25, window=60.0
        )
        status = slo.evaluate(buf)
        assert status.compliance == pytest.approx(2.0 / 3.0)
        assert status.events == 3.0

    def test_threshold_slo_watches_gauge(self, registry):
        gauge = registry.gauge("repro_lifecycle_drift_error_ewma")
        buf = obs.TimeSeriesBuffer(registry, capacity=10)
        gauge.set(0.1)
        buf.sample(unix=0.0)
        slo = obs.ThresholdSLO(threshold=0.25, window=60.0)
        status = slo.evaluate(buf)
        assert status.compliance == 1.0
        assert status.burn_rate == pytest.approx(0.4)
        gauge.set(0.5)
        buf.sample(unix=1.0)
        status = slo.evaluate(buf)
        assert status.compliance == 0.0
        assert status.burn_rate == pytest.approx(2.0)
        assert status.alerting

    def test_tracker_exports_slo_gauges(self, registry):
        buf = self._traffic(registry, ok=9, error=1)
        obs.SLOTracker(buf, obs.default_serving_slos(availability=0.9))
        text = registry.render_prometheus()
        assert 'repro_slo_burn_rate{slo="availability"} 1' in text
        assert 'repro_slo_alert{slo="availability"} 1' in text
        assert 'repro_slo_compliance{slo="latency_p99"} 1' in text

    def test_tracker_report_is_json_serializable(self, registry):
        buf = self._traffic(registry, ok=5, error=0)
        tracker = obs.SLOTracker(buf, obs.default_serving_slos())
        report = tracker.report()
        json.dumps(report)
        assert [s["name"] for s in report["slos"]] == [
            "availability", "latency_p99", "calibration",
        ]
        assert report["alerting"] == []

    def test_tracker_rejects_duplicate_names(self, registry):
        buf = obs.TimeSeriesBuffer(registry, capacity=10)
        with pytest.raises(InvalidConfiguration):
            obs.SLOTracker(
                buf,
                [obs.AvailabilitySLO(), obs.AvailabilitySLO()],
            )

    def test_slo_validation(self):
        with pytest.raises(InvalidConfiguration):
            obs.AvailabilitySLO(objective=0.0)
        with pytest.raises(InvalidConfiguration):
            obs.AvailabilitySLO(window=0.0)
        with pytest.raises(InvalidConfiguration):
            obs.LatencySLO(threshold_seconds=0.0)
        with pytest.raises(InvalidConfiguration):
            obs.ThresholdSLO(threshold=0.0)


class TestObservabilityServer:
    def test_requires_registry(self):
        with pytest.raises(InvalidConfiguration):
            obs.ObservabilityServer(None)

    def test_metrics_and_health_routes(self, registry):
        registry.counter("repro_test_total").inc(2)
        health = {"healthy": True, "note": "fine"}
        with obs.ObservabilityServer(
            registry, health=lambda: health
        ) as server:
            status, body = _fetch(server.url + "/metrics")
            assert status == 200
            assert "repro_test_total 2" in body
            status, body = _fetch(server.url + "/healthz")
            assert status == 200
            assert json.loads(body)["note"] == "fine"
            health["healthy"] = False
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _fetch(server.url + "/healthz")
            assert excinfo.value.code == 503

    def test_slo_route_empty_without_tracker(self, registry):
        with obs.ObservabilityServer(registry) as server:
            status, body = _fetch(server.url + "/slo")
            assert status == 200
            assert json.loads(body) == {
                "slos": [], "alerting": [], "frames_sampled": 0,
            }

    def test_spans_route_filters_and_limits(self, registry):
        tracer = obs.Tracer()
        with tracer.span("alpha"):
            pass
        with tracer.span("beta"):
            pass
        trace_id = next(
            s.trace_id for s in tracer.spans if s.name == "beta"
        )
        with obs.ObservabilityServer(registry, tracer=tracer) as server:
            _, body = _fetch(server.url + "/spans")
            names = [json.loads(line)["name"] for line in body.splitlines()]
            assert names == ["alpha", "beta"]
            _, body = _fetch(f"{server.url}/spans?trace={trace_id}")
            records = [json.loads(line) for line in body.splitlines()]
            assert [r["name"] for r in records] == ["beta"]
            _, body = _fetch(server.url + "/spans?limit=1")
            assert len(body.splitlines()) == 1
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _fetch(server.url + "/spans?trace=nope")
            assert excinfo.value.code == 400

    def test_unknown_route_404s_with_directory(self, registry):
        with obs.ObservabilityServer(registry) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _fetch(server.url + "/nope")
            assert excinfo.value.code == 404
            assert "/metrics" in excinfo.value.read().decode()

    def test_close_is_idempotent(self, registry):
        server = obs.ObservabilityServer(registry)
        server.close()
        server.close()


class TestExporters:
    def _spans(self):
        tracer = obs.Tracer()
        with tracer.span("serving.request"):
            with tracer.span("shard.serve"):
                pass
        return tracer

    def test_chrome_trace_events_shape(self):
        tracer = self._spans()
        events = obs.chrome_trace_events(tracer)
        assert [e["name"] for e in events] == [
            "serving.request", "shard.serve",
        ]
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0.0
            assert event["tid"] == event["args"]["trace_id"]
        assert events[0]["cat"] == "serving"
        assert events[1]["args"]["parent_id"] == events[0]["args"]["span_id"]

    def test_chrome_trace_marks_errors(self):
        tracer = obs.Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("bad")
        [event] = obs.chrome_trace_events(tracer)
        assert event["args"]["status"] == "error"
        assert "bad" in event["args"]["error"]

    def test_export_chrome_trace_file(self, tmp_path):
        path = tmp_path / "trace.json"
        count = obs.export_chrome_trace(self._spans(), path)
        assert count == 2
        document = json.loads(path.read_text())
        assert len(document["traceEvents"]) == 2

    def test_folded_stacks_self_time(self):
        spans = [
            {"name": "root", "trace_id": 1, "span_id": 1,
             "parent_id": None, "start_unix": 0.0, "wall_seconds": 1.0},
            {"name": "child", "trace_id": 1, "span_id": 2,
             "parent_id": 1, "start_unix": 0.1, "wall_seconds": 0.4},
        ]
        weights = obs.folded_stacks(spans)
        assert weights["root"] == pytest.approx(0.6e6)
        assert weights["root;child"] == pytest.approx(0.4e6)

    def test_export_folded_stacks_file(self, tmp_path):
        path = tmp_path / "stacks.folded"
        lines = obs.export_folded_stacks(self._spans(), path)
        assert lines == 2
        text = path.read_text().splitlines()
        assert any(
            line.startswith("serving.request;shard.serve ")
            for line in text
        )
