"""Unit tests for dataset fingerprinting and the feature cache."""

import threading
import time

import numpy as np
import pytest

from repro.errors import InvalidConfiguration
from repro.serving.cache import FeatureCache, dataset_fingerprint


class TestDatasetFingerprint:
    def test_deterministic(self, rng):
        data = rng.standard_normal((12, 12))
        assert dataset_fingerprint(data) == dataset_fingerprint(data.copy())

    def test_value_change_changes_hash(self, rng):
        data = rng.standard_normal((12, 12))
        other = data.copy()
        other[0, 0] += 1.0
        assert dataset_fingerprint(data) != dataset_fingerprint(other)

    def test_shape_sensitive(self):
        flat = np.arange(16.0)
        square = flat.reshape(4, 4)
        assert dataset_fingerprint(flat) != dataset_fingerprint(square)

    def test_dtype_sensitive(self):
        as64 = np.arange(16.0)
        as32 = as64.astype(np.float32)
        # Same values after the float64 view — the dtype tag still splits them.
        assert dataset_fingerprint(as64) != dataset_fingerprint(as32)

    def test_stride_sensitive(self, rng):
        data = rng.standard_normal((16, 16))
        assert dataset_fingerprint(data, stride=1) != dataset_fingerprint(
            data, stride=4
        )

    def test_off_lattice_change_shares_hash(self):
        """Only the sampled view is hashed — that is the cache's contract."""
        data = np.ones((8, 8))
        other = data.copy()
        other[1, 1] = 5.0  # not on the stride-4 lattice
        assert dataset_fingerprint(data, stride=4) == dataset_fingerprint(
            other, stride=4
        )

    def test_empty_rejected(self):
        with pytest.raises(InvalidConfiguration):
            dataset_fingerprint(np.zeros((0,)))


class TestFeatureCache:
    def test_miss_then_hit(self):
        cache = FeatureCache(max_entries=4)
        calls = []
        value, hit = cache.get_or_compute("k", lambda: calls.append(1) or "a")
        assert (value, hit) == ("a", False)
        value, hit = cache.get_or_compute("k", lambda: calls.append(1) or "b")
        assert (value, hit) == ("a", True)
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self):
        cache = FeatureCache(max_entries=2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: 0)  # refresh a
        cache.get_or_compute("c", lambda: 3)  # evicts b
        assert cache.evictions == 1
        assert len(cache) == 2
        _, hit = cache.get_or_compute("b", lambda: 9)
        assert not hit  # b was evicted, recomputed

    def test_clear(self):
        cache = FeatureCache()
        cache.get_or_compute("a", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        _, hit = cache.get_or_compute("a", lambda: 1)
        assert not hit

    def test_capacity_validated(self):
        with pytest.raises(InvalidConfiguration):
            FeatureCache(max_entries=0)

    def test_concurrent_misses_compute_once(self):
        cache = FeatureCache()
        calls = []
        started = threading.Barrier(8)

        def factory():
            calls.append(1)
            time.sleep(0.02)  # widen the in-flight window
            return "value"

        results = []

        def worker():
            started.wait()
            results.append(cache.get_or_compute("k", factory))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(calls) == 1, "in-flight dedup must run the factory once"
        assert all(value == "value" for value, _ in results)
        assert sum(1 for _, hit in results if not hit) == 1
        assert cache.misses == 1 and cache.hits == 7

    def test_factory_error_propagates_and_retries(self):
        cache = FeatureCache()

        def boom():
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            cache.get_or_compute("k", boom)
        # The failure is not cached: a later request retries cleanly.
        value, hit = cache.get_or_compute("k", lambda: 42)
        assert (value, hit) == (42, False)


class _CountingEngine:
    """Stub engine: counts ``analyze`` calls, widening the miss window."""

    def __init__(self):
        self.analyze_calls = 0
        self.config = None  # service reads sampling_stride off the config
        self._lock = threading.Lock()

    def analyze(self, data):
        with self._lock:
            self.analyze_calls += 1
        time.sleep(0.05)  # keep the analysis in flight while peers storm
        return {"mean": float(np.mean(data))}

    def estimate(self, data, target_ratio, *, analysis=None):
        from repro.core.inference import Estimate

        return Estimate(
            config=1e-3,
            target_ratio=target_ratio,
            adjusted_target=target_ratio,
            nonconstant=1.0,
            features=np.zeros(5),
            analysis_seconds=0.0,
            tier="model",
            confidence=1.0,
        )


class TestServiceMissStorm:
    def test_same_fingerprint_storm_runs_one_analysis(self):
        """N concurrent submitters of one dataset share a single analysis.

        The storm goes through the full service path — fingerprinting,
        per-key queues, worker threads — so this covers the in-flight
        dedup contract end to end, not just the cache primitive.
        """
        from repro.serving import EstimateRequest, EstimationService

        engine = _CountingEngine()
        data = np.linspace(0.0, 1.0, 4096).reshape(16, 16, 16)
        started = threading.Barrier(8)
        futures = []
        futures_lock = threading.Lock()

        with EstimationService(engine, workers=8, max_batch=1) as service:

            def submitter(i: int) -> None:
                started.wait()
                future = service.submit(
                    EstimateRequest(data=data, target_ratio=4.0 + i)
                )
                with futures_lock:
                    futures.append(future)

            threads = [
                threading.Thread(target=submitter, args=(i,))
                for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            served = [f.result(timeout=30) for f in futures]

        assert engine.analyze_calls == 1, (
            "a same-fingerprint miss storm must run exactly one analysis"
        )
        assert len({s.dataset_key for s in served}) == 1
        assert sum(1 for s in served if not s.cache_hit) == 1
