"""Compression memo cache unit tests: counters, LRU, keying."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.compressors import get_compressor
from repro.compressors.base import content_fingerprint
from repro.errors import CompressionError, InvalidConfiguration
from repro.parallel import CompressionMemoCache, MemoRecord

pytestmark = pytest.mark.parallel


@pytest.fixture()
def sz():
    return get_compressor("sz")


class TestCounters:
    def test_miss_then_hit(self, sz):
        memo = CompressionMemoCache()
        key = memo.key("fp", sz, 1e-3)
        assert memo.get(key) is None
        assert (memo.hits, memo.misses) == (0, 1)
        memo.put(key, MemoRecord(ratio=10.0, seconds=0.5))
        record = memo.get(key)
        assert record is not None and record.ratio == 10.0
        assert (memo.hits, memo.misses) == (1, 1)
        assert memo.hit_ratio == 0.5

    def test_peek_does_not_touch_counters(self, sz):
        memo = CompressionMemoCache()
        key = memo.key("fp", sz, 1e-3)
        assert memo.peek(key) is None
        memo.put(key, MemoRecord(ratio=2.0, seconds=0.1))
        assert memo.peek(key).ratio == 2.0
        assert (memo.hits, memo.misses) == (0, 0)

    def test_stats_snapshot(self, sz):
        memo = CompressionMemoCache()
        memo.put(memo.key("fp", sz, 1e-3), MemoRecord(ratio=2.0, seconds=0.1))
        stats = memo.stats()
        assert stats["entries"] == 1
        assert stats["hit_ratio"] == 0.0


class TestLRU:
    def test_eviction_counts_and_drops_oldest(self, sz):
        memo = CompressionMemoCache(max_entries=2)
        keys = [memo.key("fp", sz, c) for c in (1e-4, 1e-3, 1e-2)]
        for key in keys:
            memo.put(key, MemoRecord(ratio=1.0, seconds=0.0))
        assert memo.evictions == 1
        assert len(memo) == 2
        assert memo.peek(keys[0]) is None  # oldest evicted
        assert memo.peek(keys[2]) is not None

    def test_get_refreshes_recency(self, sz):
        memo = CompressionMemoCache(max_entries=2)
        a, b, c = (memo.key("fp", sz, x) for x in (1e-4, 1e-3, 1e-2))
        memo.put(a, MemoRecord(ratio=1.0, seconds=0.0))
        memo.put(b, MemoRecord(ratio=2.0, seconds=0.0))
        memo.get(a)  # a becomes most-recent; b is now oldest
        memo.put(c, MemoRecord(ratio=3.0, seconds=0.0))
        assert memo.peek(a) is not None
        assert memo.peek(b) is None

    def test_rejects_zero_capacity(self):
        with pytest.raises(InvalidConfiguration):
            CompressionMemoCache(max_entries=0)


class TestRecords:
    def test_psnr_is_never_downgraded(self, sz):
        memo = CompressionMemoCache()
        key = memo.key("fp", sz, 1e-3)
        memo.put(key, MemoRecord(ratio=5.0, seconds=0.2, psnr=60.0))
        memo.put(key, MemoRecord(ratio=5.0, seconds=0.1))  # ratio-only
        assert memo.peek(key).psnr == 60.0

    def test_merge_bulk_inserts(self, sz):
        memo = CompressionMemoCache()
        items = {
            memo.key("fp", sz, c): MemoRecord(ratio=c * 1e4, seconds=0.0)
            for c in (1e-4, 1e-3)
        }
        memo.merge(items)
        assert len(memo) == 2

    def test_clear(self, sz):
        memo = CompressionMemoCache()
        memo.put(memo.key("fp", sz, 1e-3), MemoRecord(ratio=1.0, seconds=0.0))
        memo.clear()
        assert len(memo) == 0

    def test_pickle_roundtrip_keeps_entries_and_counters(self, sz):
        memo = CompressionMemoCache(max_entries=8)
        key = memo.key("fp", sz, 1e-3)
        memo.put(key, MemoRecord(ratio=4.0, seconds=0.3))
        memo.get(key)
        clone = pickle.loads(pickle.dumps(memo))
        assert clone.peek(key).ratio == 4.0
        assert clone.hits == memo.hits
        clone.put(memo.key("fp", sz, 1e-2), MemoRecord(ratio=1.0, seconds=0.0))
        assert len(clone) == 2  # the clone's lock works independently


class TestKeying:
    def test_key_normalizes_config(self, sz):
        fp = "fp"
        raw = 1.23456e-3
        assert CompressionMemoCache.key(fp, sz, raw) == CompressionMemoCache.key(
            fp, sz, sz.normalize_config(raw)
        )

    def test_cache_token_separates_option_state(self):
        a = get_compressor("zfp")
        b = get_compressor("zfp")
        token_a = a.cache_token()
        options = [
            attr
            for attr, value in vars(b).items()
            if not attr.startswith("_") and isinstance(value, (str, int, float, bool))
        ]
        if not options:
            pytest.skip("compressor exposes no simple option attributes")
        attr = options[0]
        value = getattr(b, attr)
        setattr(b, attr, value + 1 if isinstance(value, (int, float)) else value + "_x")
        assert b.cache_token() != token_a

    def test_content_fingerprint_sensitivity(self):
        data = np.arange(12, dtype=np.float64)
        assert content_fingerprint(data) == content_fingerprint(data.copy())
        bumped = data.copy()
        bumped[-1] += 1e-12
        assert content_fingerprint(bumped) != content_fingerprint(data)
        assert content_fingerprint(data.reshape(3, 4)) != content_fingerprint(data)
        assert content_fingerprint(
            data.astype(np.float32)
        ) != content_fingerprint(data)

    def test_content_fingerprint_rejects_empty(self):
        with pytest.raises(CompressionError):
            content_fingerprint(np.empty(0))


class TestRatioConvenience:
    def test_second_call_is_a_hit_with_identical_numbers(self, sz, smooth_field3d):
        memo = CompressionMemoCache()
        ratio1, seconds1, hit1 = memo.ratio(sz, smooth_field3d, 1e-3)
        ratio2, seconds2, hit2 = memo.ratio(sz, smooth_field3d, 1e-3)
        assert (hit1, hit2) == (False, True)
        assert ratio2 == ratio1
        assert seconds2 == seconds1  # hits charge the recorded time
        assert memo.hits == 1
