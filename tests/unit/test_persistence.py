"""Unit tests for pipeline save/load."""

import io
import json

import numpy as np
import pytest

import repro
from repro.compressors import get_compressor
from repro.core import persistence
from repro.core.persistence import load_pipeline, save_pipeline
from repro.errors import CorruptStreamError, InvalidConfiguration, NotFittedError
from repro.ml.svr import SVR

from tests.conftest import small_forest_factory


def _unwrap_arrays(path) -> dict[str, np.ndarray]:
    """The npz arrays inside a framed archive written by save_pipeline."""
    raw = path.read_bytes()
    payload = raw[persistence._HEADER_LEN :]
    with np.load(io.BytesIO(payload)) as archive:
        return {k: archive[k] for k in archive.files}


@pytest.fixture(scope="module")
def fitted_pipeline():
    rng = np.random.default_rng(2)
    lin = np.linspace(0, 4 * np.pi, 20)
    x, y, z = np.meshgrid(lin, lin, lin, indexing="ij")
    train = [
        (np.sin(x + 0.3 * i) * np.cos(y) + 0.03 * rng.standard_normal((20,) * 3))
        .astype(np.float32)
        for i in range(2)
    ]
    config = repro.FXRZConfig(stationary_points=8, augmented_samples=60)
    pipeline = repro.FXRZ(
        get_compressor("sz"), config=config, model_factory=small_forest_factory
    )
    pipeline.fit(train)
    return pipeline, train


class TestRoundtrip:
    def test_predictions_identical_after_reload(self, fitted_pipeline, tmp_path):
        pipeline, train = fitted_pipeline
        path = tmp_path / "model.npz"
        save_pipeline(pipeline, path)
        restored = load_pipeline(path)

        probe = train[0]
        for tcr in (3.0, 6.0, 10.0):
            original = pipeline.estimate_config(probe, tcr).config
            reloaded = restored.estimate_config(probe, tcr).config
            assert reloaded == pytest.approx(original)

    def test_metadata_restored(self, fitted_pipeline, tmp_path):
        pipeline, _ = fitted_pipeline
        path = tmp_path / "model.npz"
        save_pipeline(pipeline, path)
        restored = load_pipeline(path)
        assert restored.compressor.name == "sz"
        assert restored.config == pipeline.config
        assert len(restored.curves) == len(pipeline.curves)

    def test_sz_options_restored(self, tmp_path):
        rng = np.random.default_rng(5)
        data = rng.standard_normal((16, 16, 16)).cumsum(axis=0).astype(np.float32)
        config = repro.FXRZConfig(stationary_points=6, augmented_samples=40)
        from repro.compressors.sz import SZCompressor

        pipeline = repro.FXRZ(
            SZCompressor(interpolation="linear", entropy="range"),
            config=config,
            model_factory=small_forest_factory,
        )
        pipeline.fit([data])
        path = tmp_path / "szopts.npz"
        save_pipeline(pipeline, path)
        restored = load_pipeline(path)
        assert restored.compressor.interpolation == "linear"
        assert restored.compressor.entropy == "range"

    def test_rate_mode_compressor_restored(self, tmp_path):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((16, 16, 16)).cumsum(axis=0).astype(np.float32)
        config = repro.FXRZConfig(stationary_points=6, augmented_samples=40)
        pipeline = repro.FXRZ(
            get_compressor("zfp", mode="rate"),
            config=config,
            model_factory=small_forest_factory,
        )
        pipeline.fit([data])
        path = tmp_path / "rate.npz"
        save_pipeline(pipeline, path)
        restored = load_pipeline(path)
        assert restored.compressor.mode == "rate"


class TestValidation:
    def test_unfitted_pipeline_rejected(self, tmp_path):
        pipeline = repro.FXRZ(get_compressor("sz"))
        with pytest.raises(NotFittedError):
            save_pipeline(pipeline, tmp_path / "x.npz")

    def test_custom_model_rejected(self, fitted_pipeline, tmp_path):
        _, train = fitted_pipeline
        config = repro.FXRZConfig(stationary_points=6, augmented_samples=40)
        pipeline = repro.FXRZ(
            get_compressor("sz"),
            config=config,
            model_factory=lambda seed: SVR(),
        )
        pipeline.fit(train[:1])
        with pytest.raises(InvalidConfiguration):
            save_pipeline(pipeline, tmp_path / "x.npz")

    def test_garbage_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(InvalidConfiguration):
            load_pipeline(path)

    def test_wrong_format_version_rejected(self, fitted_pipeline, tmp_path):
        pipeline, _ = fitted_pipeline
        path = tmp_path / "versioned.npz"
        save_pipeline(pipeline, path)
        arrays = _unwrap_arrays(path)
        meta = json.loads(bytes(arrays["meta"]).decode("utf-8"))
        meta["format_version"] = 999
        arrays["meta"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        np.savez(path, **arrays)  # legacy bare-npz layout is still read
        with pytest.raises(InvalidConfiguration, match="newer"):
            load_pipeline(path)

    def test_unknown_compressor_rejected(self, fitted_pipeline, tmp_path):
        pipeline, _ = fitted_pipeline
        path = tmp_path / "badcomp.npz"
        save_pipeline(pipeline, path)
        arrays = _unwrap_arrays(path)
        meta = json.loads(bytes(arrays["meta"]).decode("utf-8"))
        meta["compressor"] = "definitely-not-a-compressor"
        arrays["meta"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        np.savez(path, **arrays)
        with pytest.raises(InvalidConfiguration, match="unknown or unloadable"):
            load_pipeline(path)

    def test_bad_config_rejected(self, fitted_pipeline, tmp_path):
        pipeline, _ = fitted_pipeline
        path = tmp_path / "badcfg.npz"
        save_pipeline(pipeline, path)
        arrays = _unwrap_arrays(path)
        meta = json.loads(bytes(arrays["meta"]).decode("utf-8"))
        meta["config"]["no_such_knob"] = 1
        arrays["meta"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        np.savez(path, **arrays)
        with pytest.raises(InvalidConfiguration, match="configuration"):
            load_pipeline(path)


class TestFrameIntegrity:
    def test_truncated_archive_rejected(self, fitted_pipeline, tmp_path):
        pipeline, _ = fitted_pipeline
        path = tmp_path / "trunc.npz"
        save_pipeline(pipeline, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CorruptStreamError, match="truncated"):
            load_pipeline(path)

    def test_bit_flip_rejected(self, fitted_pipeline, tmp_path):
        pipeline, _ = fitted_pipeline
        path = tmp_path / "flip.npz"
        save_pipeline(pipeline, path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptStreamError, match="checksum"):
            load_pipeline(path)

    def test_future_container_version_rejected(self, fitted_pipeline, tmp_path):
        pipeline, _ = fitted_pipeline
        path = tmp_path / "future.npz"
        save_pipeline(pipeline, path)
        raw = bytearray(path.read_bytes())
        offset = len(persistence._MAGIC)
        raw[offset : offset + 2] = (99).to_bytes(2, "little")
        path.write_bytes(bytes(raw))
        with pytest.raises(InvalidConfiguration, match="newer"):
            load_pipeline(path)

    def test_non_archive_rejected(self, tmp_path):
        path = tmp_path / "noise.npz"
        path.write_bytes(b"this is not an archive at all")
        with pytest.raises(InvalidConfiguration, match="not an FXRZ"):
            load_pipeline(path)

    def test_missing_array_is_corrupt(self, fitted_pipeline, tmp_path):
        pipeline, _ = fitted_pipeline
        path = tmp_path / "missing.npz"
        save_pipeline(pipeline, path)
        arrays = _unwrap_arrays(path)
        del arrays["tree0_feature"]
        np.savez(path, **arrays)
        with pytest.raises(CorruptStreamError, match="missing array"):
            load_pipeline(path)
