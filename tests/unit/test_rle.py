"""Unit tests for run-length coding."""

import numpy as np
import pytest

from repro.errors import CorruptStreamError

from repro.encoding.rle import (
    rle_decode,
    rle_encode,
    zero_rle_decode,
    zero_rle_encode,
)


class TestGenericRLE:
    def test_basic_runs(self):
        values, runs = rle_encode(np.array([1, 1, 1, 2, 3, 3]))
        assert values.tolist() == [1, 2, 3]
        assert runs.tolist() == [3, 1, 2]

    def test_roundtrip(self, rng):
        symbols = rng.integers(0, 3, 5000)
        values, runs = rle_encode(symbols)
        assert np.array_equal(rle_decode(values, runs), symbols)

    def test_empty(self):
        values, runs = rle_encode(np.zeros(0, np.int64))
        assert values.size == 0 and runs.size == 0
        assert rle_decode(values, runs).size == 0

    def test_single_element(self):
        values, runs = rle_encode(np.array([9]))
        assert values.tolist() == [9] and runs.tolist() == [1]

    def test_all_distinct(self):
        data = np.arange(10)
        values, runs = rle_encode(data)
        assert np.array_equal(values, data)
        assert (runs == 1).all()

    def test_decode_rejects_mismatched_shapes(self):
        with pytest.raises(CorruptStreamError):
            rle_decode(np.array([1, 2]), np.array([1]))

    def test_decode_rejects_nonpositive_runs(self):
        with pytest.raises(CorruptStreamError):
            rle_decode(np.array([1]), np.array([0]))


class TestZeroRLE:
    def test_basic(self):
        tokens, literals = zero_rle_encode(np.array([0, 0, 5, 0, 3]))
        assert tokens.tolist() == [2, 1, 0]
        assert literals.tolist() == [5, 3]

    def test_roundtrip_sparse(self, rng):
        symbols = np.zeros(10_000, dtype=np.int64)
        idx = rng.choice(10_000, 300, replace=False)
        symbols[idx] = rng.integers(1, 50, 300)
        tokens, literals = zero_rle_encode(symbols)
        assert np.array_equal(zero_rle_decode(tokens, literals), symbols)

    def test_all_zero(self):
        tokens, literals = zero_rle_encode(np.zeros(7, np.int64))
        assert tokens.tolist() == [7]
        assert literals.size == 0
        assert np.array_equal(zero_rle_decode(tokens, literals), np.zeros(7))

    def test_no_zeros(self):
        data = np.array([1, 2, 3])
        tokens, literals = zero_rle_encode(data)
        assert np.array_equal(zero_rle_decode(tokens, literals), data)

    def test_custom_zero_value(self):
        data = np.array([9, 9, 1, 9])
        tokens, literals = zero_rle_encode(data, zero=9)
        assert np.array_equal(zero_rle_decode(tokens, literals, zero=9), data)

    def test_empty(self):
        tokens, literals = zero_rle_encode(np.zeros(0, np.int64))
        assert zero_rle_decode(tokens, literals).size == 0

    def test_decode_rejects_bad_token_count(self):
        with pytest.raises(CorruptStreamError):
            zero_rle_decode(np.array([1, 2]), np.array([5, 6]))

    def test_decode_rejects_negative_runs(self):
        with pytest.raises(CorruptStreamError):
            zero_rle_decode(np.array([-1, 0]), np.array([5]))


class TestArenaBackedRLE:
    def test_rle_encode_uses_arena_scratch(self, rng):
        from repro.compressors.kernels import KernelArena

        arena = KernelArena()
        symbols = rng.integers(0, 3, 5000)
        values, runs = rle_encode(symbols, arena=arena)
        assert np.array_equal(rle_decode(values, runs), symbols)
        # Same stream again: the outputs must come from pooled buffers.
        values2, runs2 = rle_encode(symbols, arena=arena)
        assert np.shares_memory(values, values2)
        assert np.shares_memory(runs, runs2)
        assert arena.stats.reuses >= 2

    def test_zero_rle_encode_uses_arena_scratch(self, rng):
        from repro.compressors.kernels import KernelArena

        arena = KernelArena()
        symbols = np.zeros(10_000, dtype=np.int64)
        idx = rng.choice(10_000, 300, replace=False)
        symbols[idx] = rng.integers(1, 50, 300)
        tokens, literals = zero_rle_encode(symbols, arena=arena)
        assert np.array_equal(zero_rle_decode(tokens, literals), symbols)
        tokens2, literals2 = zero_rle_encode(symbols, arena=arena)
        assert np.shares_memory(tokens, tokens2)
        assert np.shares_memory(literals, literals2)

    def test_arena_output_matches_plain_output(self, rng):
        from repro.compressors.kernels import KernelArena

        symbols = rng.integers(-5, 6, 4000)
        plain_tokens, plain_literals = zero_rle_encode(symbols)
        arena_tokens, arena_literals = zero_rle_encode(
            symbols, arena=KernelArena()
        )
        assert np.array_equal(plain_tokens, arena_tokens)
        assert np.array_equal(plain_literals, arena_literals)
        plain_values, plain_runs = rle_encode(symbols)
        arena_values, arena_runs = rle_encode(symbols, arena=KernelArena())
        assert np.array_equal(plain_values, arena_values)
        assert np.array_equal(plain_runs, arena_runs)

    def test_all_zero_stream_with_arena(self):
        from repro.compressors.kernels import KernelArena

        tokens, literals = zero_rle_encode(
            np.zeros(7, np.int64), arena=KernelArena()
        )
        assert tokens.tolist() == [7]
        assert literals.size == 0
