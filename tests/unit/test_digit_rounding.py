"""Unit tests for the digit-rounding (bit grooming) compressor."""

import numpy as np
import pytest

from repro.compressors import get_compressor
from repro.compressors.digit_rounding import DigitRoundingCompressor, _keep_bits
from repro.errors import InvalidConfiguration


@pytest.fixture()
def comp():
    return DigitRoundingCompressor()


class TestKeepBits:
    def test_monotone_in_digits(self):
        bits = [_keep_bits(d) for d in range(1, 8)]
        assert bits == sorted(bits)

    def test_bounded_by_mantissa(self):
        assert _keep_bits(7) <= 23


class TestRoundtrip:
    def test_registered(self):
        assert get_compressor("digit").name == "digit"

    @pytest.mark.parametrize("digits", [1, 2, 3, 4, 5, 6])
    def test_relative_error_within_digit_limit(self, comp, smooth_field3d, digits):
        recon, blob = comp.roundtrip(smooth_field3d, digits)
        comp.verify(smooth_field3d, recon, blob.config)

    def test_seven_digits_lossless_for_float32(self, comp, smooth_field3d):
        recon, _ = comp.roundtrip(smooth_field3d, 7)
        assert np.array_equal(recon, smooth_field3d)

    def test_ratio_decreases_with_digits(self, comp, smooth_field3d):
        ratios = [
            comp.compression_ratio(smooth_field3d, d) for d in (1, 3, 5, 7)
        ]
        assert ratios == sorted(ratios, reverse=True)

    def test_decimal_semantics(self, comp):
        """Three digits keep 1234.x distinguishable from 1235.x."""
        data = np.array([[1234.0, 1235.0], [1236.0, 1237.0]], dtype=np.float32)
        recon, _ = comp.roundtrip(data, 4)
        assert np.all(np.abs(recon - data) / data < 1e-3)

    def test_signed_and_tiny_values(self, comp, rng):
        data = (rng.standard_normal((8, 8)) * 1e-20).astype(np.float32)
        recon, blob = comp.roundtrip(data, 3)
        comp.verify(data, recon, blob.config)

    def test_top_binade_never_grooms_to_inf(self, comp):
        data = np.full((8, 8), 3.4e38, dtype=np.float32)
        recon, _ = comp.roundtrip(data, 2)
        assert np.all(np.isfinite(recon))

    @pytest.mark.parametrize("shape", [(9,), (5, 7), (4, 5, 6)])
    def test_odd_shapes(self, comp, rng, shape):
        data = rng.standard_normal(shape).astype(np.float32)
        recon, blob = comp.roundtrip(data, 4)
        comp.verify(data, recon, blob.config)

    def test_bad_digits_rejected(self, comp, smooth_field3d):
        with pytest.raises(InvalidConfiguration):
            comp.compress(smooth_field3d, 0)
        with pytest.raises(InvalidConfiguration):
            comp.compress(smooth_field3d, 8)

    def test_config_snapped_to_int(self, comp, smooth_field3d):
        blob = comp.compress(smooth_field3d, 2.6)
        assert blob.config == 3.0


class TestWithFXRZ:
    def test_fixed_ratio_pipeline_works(self, rng, fast_config, fast_model_factory):
        """FXRZ handles the third config family end-to-end."""
        import repro

        lin = np.linspace(0, 4 * np.pi, 20)
        x, y, z = np.meshgrid(lin, lin, lin, indexing="ij")
        fields = [
            (100 * np.sin(x + 0.3 * i) * np.cos(y)
             + rng.standard_normal((20,) * 3)).astype(np.float32)
            for i in range(3)
        ]
        pipeline = repro.FXRZ(
            get_compressor("digit"),
            config=fast_config,
            model_factory=fast_model_factory,
        )
        pipeline.fit(fields[:2])
        result = pipeline.compress_to_ratio(fields[2], 2.0)
        assert result.measured_ratio > 1.0
        assert result.estimate.config == round(result.estimate.config)
