"""Unit tests for the Objective algebra and the quality model."""

import numpy as np
import pytest

from repro.analysis.distortion import psnr, ssim
from repro.compressors import get_compressor
from repro.core.inference import InferenceEngine
from repro.core.objective import (
    FrontierPoint,
    ParetoFrontier,
    PSNRTarget,
    QualityModel,
    RatioTarget,
    SSIMTarget,
    analytic_bound_for_ssim,
    as_objective,
    parse_objective,
)
from repro.core.training import TrainingEngine
from repro.errors import InvalidConfiguration

pytestmark = pytest.mark.objective


@pytest.fixture(scope="module")
def fitted_engine(smooth_field3d):
    from repro.config import FXRZConfig
    from tests.conftest import small_forest_factory

    config = FXRZConfig(stationary_points=8, augmented_samples=60)
    training = TrainingEngine(
        get_compressor("sz"), config=config, model_factory=small_forest_factory
    )
    training.add_dataset(smooth_field3d)
    model = training.fit()
    return InferenceEngine(model, get_compressor("sz"), config=config)


class TestObjectiveTypes:
    def test_canonical_round_trip(self):
        for objective in (RatioTarget(10), PSNRTarget(60), SSIMTarget(0.99)):
            assert parse_objective(objective.canonical) == objective
            assert str(objective) == objective.canonical

    def test_canonical_forms(self):
        assert RatioTarget(10).canonical == "ratio:10"
        assert PSNRTarget(60.0).canonical == "psnr:60"
        assert SSIMTarget(0.995).canonical == "ssim:0.995"

    def test_bare_number_is_legacy_ratio(self):
        assert parse_objective("40") == RatioTarget(40.0)
        assert parse_objective(" 12.5 ") == RatioTarget(12.5)

    def test_kind_flags(self):
        assert not RatioTarget(10).is_quality
        assert PSNRTarget(60).is_quality
        assert SSIMTarget(0.9).is_quality

    def test_validation(self):
        with pytest.raises(InvalidConfiguration):
            RatioTarget(0.0)
        with pytest.raises(InvalidConfiguration):
            RatioTarget(float("nan"))
        with pytest.raises(InvalidConfiguration):
            PSNRTarget(-3.0)
        with pytest.raises(InvalidConfiguration):
            SSIMTarget(0.0)
        with pytest.raises(InvalidConfiguration):
            SSIMTarget(1.5)

    def test_parse_rejects_garbage(self):
        with pytest.raises(InvalidConfiguration):
            parse_objective("vibes:11")
        with pytest.raises(InvalidConfiguration):
            parse_objective("psnr:sixty")
        with pytest.raises(InvalidConfiguration):
            parse_objective("not-a-number")

    def test_as_objective_coercions(self):
        target = PSNRTarget(50)
        assert as_objective(target) is target
        assert as_objective(8) == RatioTarget(8.0)
        assert as_objective(8.5) == RatioTarget(8.5)
        assert as_objective("ssim:0.9") == SSIMTarget(0.9)
        with pytest.raises(InvalidConfiguration):
            as_objective(True)
        with pytest.raises(InvalidConfiguration):
            as_objective([10])


class TestAnalyticSSIM:
    def test_formula_inversion(self, smooth_field3d):
        target = 0.98
        bound = analytic_bound_for_ssim(smooth_field3d, target)
        sigma = float(np.std(np.asarray(smooth_field3d, dtype=np.float64)))
        implied = 2 * sigma**2 / (2 * sigma**2 + bound**2 / 3)
        assert implied == pytest.approx(target)

    def test_analytic_close_for_sz(self, smooth_field3d):
        comp = get_compressor("sz")
        target = 0.95
        bound = analytic_bound_for_ssim(smooth_field3d, target)
        recon, _ = comp.roundtrip(smooth_field3d, bound)
        assert abs(ssim(smooth_field3d, recon) - target) < 0.05

    def test_lossless_knee(self, smooth_field3d):
        assert analytic_bound_for_ssim(smooth_field3d, 1.0) > 0

    def test_bad_inputs(self, smooth_field3d):
        with pytest.raises(InvalidConfiguration):
            analytic_bound_for_ssim(np.ones((4, 4)), 0.9)
        bad = np.array([1.0, np.nan, 2.0])
        with pytest.raises(InvalidConfiguration):
            analytic_bound_for_ssim(bad, 0.9)


class TestQualityModel:
    def test_predict_psnr_matches_analytic_prior(self):
        model = QualityModel()
        value_range = 2.0
        config = 1e-3
        expected = 20 * np.log10(value_range * np.sqrt(3) / config)
        assert model.predict_psnr(value_range, config) == pytest.approx(expected)

    def test_offset_folds_into_predictions(self):
        plain = QualityModel()
        shifted = QualityModel(offset_db=4.0)
        assert shifted.predict_psnr(2.0, 1e-3) == pytest.approx(
            plain.predict_psnr(2.0, 1e-3) + 4.0
        )

    def test_trust_contract(self):
        model = QualityModel()
        assert model.trusts(get_compressor("sz"))
        assert not model.trusts(get_compressor("zfp"))
        assert QualityModel(offset_db=1.0).trusts(get_compressor("zfp"))

    def test_refine_psnr_hits_target(self, smooth_field3d):
        comp = get_compressor("sz")
        result = QualityModel().refine(
            comp, smooth_field3d, PSNRTarget(50.0), probes=2
        )
        recon, _ = comp.roundtrip(smooth_field3d, result.config)
        assert abs(psnr(smooth_field3d, recon) - 50.0) < 3.0
        assert result.probes_spent >= 1

    def test_refine_ssim_hits_target(self, smooth_field3d):
        comp = get_compressor("sz")
        result = QualityModel().refine(
            comp, smooth_field3d, SSIMTarget(0.97), probes=3
        )
        recon, _ = comp.roundtrip(smooth_field3d, result.config)
        assert abs(ssim(smooth_field3d, recon) - 0.97) < 0.03

    def test_zero_probes_never_compresses(self, smooth_field3d, monkeypatch):
        comp = get_compressor("sz")
        calls = []
        original = comp.roundtrip

        def spy(data, config):
            calls.append(config)
            return original(data, config)

        monkeypatch.setattr(comp, "roundtrip", spy)
        result = QualityModel().refine(
            comp, smooth_field3d, SSIMTarget(0.95), probes=0
        )
        assert calls == []
        assert result.probes_spent == 0
        assert result.measured is None

    def test_calibrate_measures_offset(self, smooth_field3d):
        comp = get_compressor("sz")
        model = QualityModel().calibrate(comp, smooth_field3d, probes=2)
        assert model.calibrated
        assert model.compressor == "sz"
        # SZ's quantizer is close to the uniform-noise prior.
        assert abs(model.offset_db) < 3.0

    def test_precision_compressor_rejected(self, smooth_field3d):
        comp = get_compressor("fpzip")
        with pytest.raises(InvalidConfiguration):
            QualityModel().refine(comp, smooth_field3d, PSNRTarget(50.0))
        with pytest.raises(InvalidConfiguration):
            QualityModel().calibrate(comp, smooth_field3d)

    def test_save_load_round_trip(self, tmp_path):
        model = QualityModel(
            compressor="sz", offset_db=1.25, probes=3, metadata={"note": "x"}
        )
        path = tmp_path / "q1.json"
        model.save(path)
        restored = QualityModel.load(path)
        assert restored == model

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json")
        with pytest.raises(InvalidConfiguration):
            QualityModel.load(path)


class TestEngineObjectives:
    def test_ratio_objective_is_bit_identical(self, fitted_engine, smooth_field3d):
        legacy = fitted_engine.estimate(smooth_field3d, 10.0)
        via_objective = fitted_engine.estimate(
            smooth_field3d, objective=RatioTarget(10.0)
        )
        assert via_objective.config == legacy.config
        assert via_objective.adjusted_target == legacy.adjusted_target
        assert via_objective.nonconstant == legacy.nonconstant
        assert np.array_equal(via_objective.features, legacy.features)
        assert legacy.objective == RatioTarget(10.0)

    def test_exclusive_targets(self, fitted_engine, smooth_field3d):
        with pytest.raises(InvalidConfiguration):
            fitted_engine.estimate(
                smooth_field3d, 10.0, objective=PSNRTarget(60.0)
            )
        with pytest.raises(InvalidConfiguration):
            fitted_engine.estimate(smooth_field3d)

    def test_quality_estimate(self, fitted_engine, smooth_field3d):
        estimate = fitted_engine.estimate(
            smooth_field3d, objective=PSNRTarget(50.0)
        )
        assert estimate.objective == PSNRTarget(50.0)
        assert estimate.tier in ("analytic", "probe")
        assert estimate.target_ratio == 0.0
        recon, _ = get_compressor("sz").roundtrip(
            smooth_field3d, estimate.config
        )
        assert abs(psnr(smooth_field3d, recon) - 50.0) < 3.0

    def test_canonical_string_accepted(self, fitted_engine, smooth_field3d):
        by_string = fitted_engine.estimate(smooth_field3d, objective="psnr:50")
        by_type = fitted_engine.estimate(
            smooth_field3d, objective=PSNRTarget(50.0)
        )
        assert by_string.config == by_type.config

    def test_frontier_query(self, fitted_engine, smooth_field3d):
        front = fitted_engine.frontier(smooth_field3d, points=8)
        assert len(front) >= 2
        answer = front.query("cr>=4")
        assert answer is not None
        assert answer.ratio >= 4
        ratios = [p.ratio for p in front]
        psnrs = [p.psnr for p in front]
        assert ratios == sorted(ratios)
        assert psnrs == sorted(psnrs, reverse=True)


class TestFrontierPruning:
    def test_dominated_points_dropped(self):
        keep_a = FrontierPoint(config=1e-3, ratio=4.0, psnr=80.0)
        keep_b = FrontierPoint(config=1e-2, ratio=16.0, psnr=60.0)
        dominated = FrontierPoint(config=5e-3, ratio=4.0, psnr=70.0)
        front = ParetoFrontier(points=(keep_b, dominated, keep_a))
        assert front.points == (keep_a, keep_b)

    def test_query_grammar(self):
        front = ParetoFrontier(
            points=(
                FrontierPoint(config=1e-3, ratio=4.0, psnr=80.0),
                FrontierPoint(config=1e-2, ratio=16.0, psnr=60.0),
            )
        )
        assert front.query("cr>=10").psnr == 60.0
        assert front.query("ratio >= 4").psnr == 80.0
        assert front.query("psnr>=70").ratio == 4.0
        assert front.query("cr>=100") is None
        with pytest.raises(InvalidConfiguration):
            front.query("entropy>=3")


class TestMemoShim:
    def test_legacy_memo_kwarg_warns_once(self, smooth_field3d):
        from repro.core.psnr_control import calibrated_bound_for_psnr
        from repro.runtime import RuntimeContext
        from repro.runtime.compat import reset_deprecation_warnings

        reset_deprecation_warnings()
        comp = get_compressor("sz")
        with RuntimeContext() as ctx:
            with pytest.warns(DeprecationWarning, match="memo"):
                calibrated_bound_for_psnr(
                    comp, smooth_field3d, 50.0, 1, ctx.memo
                )

    def test_ctx_path_never_warns(self, smooth_field3d, recwarn):
        import warnings

        from repro.core.psnr_control import calibrated_bound_for_psnr
        from repro.runtime import RuntimeContext
        from repro.runtime.compat import reset_deprecation_warnings

        reset_deprecation_warnings()
        comp = get_compressor("sz")
        with RuntimeContext() as ctx:
            with warnings.catch_warnings():
                warnings.simplefilter("error", DeprecationWarning)
                calibrated_bound_for_psnr(
                    comp, smooth_field3d, 50.0, probes=1, ctx=ctx
                )
