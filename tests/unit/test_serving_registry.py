"""Unit tests for the versioned on-disk model registry."""

import json
import threading

import numpy as np
import pytest

import repro
from repro.compressors import get_compressor
from repro.core.persistence import pipeline_fingerprint
from repro.errors import InvalidConfiguration
from repro.serving import LATEST, ModelRegistry

from tests.conftest import small_forest_factory


@pytest.fixture(scope="module")
def fitted_pipeline():
    rng = np.random.default_rng(7)
    lin = np.linspace(0, 4 * np.pi, 20)
    x, y, z = np.meshgrid(lin, lin, lin, indexing="ij")
    train = [
        (np.sin(x + 0.3 * i) * np.cos(y) + 0.03 * rng.standard_normal((20,) * 3))
        .astype(np.float32)
        for i in range(2)
    ]
    config = repro.FXRZConfig(stationary_points=8, augmented_samples=60)
    pipeline = repro.FXRZ(
        get_compressor("sz"), config=config, model_factory=small_forest_factory
    )
    pipeline.fit(train)
    return pipeline, train


class TestPublish:
    def test_versions_increment(self, fitted_pipeline, tmp_path):
        pipeline, _ = fitted_pipeline
        registry = ModelRegistry(tmp_path / "reg")
        first = registry.publish(pipeline)
        second = registry.publish(pipeline)
        assert (first.version, second.version) == (1, 2)
        assert first.fingerprint == second.fingerprint
        assert first.path.is_file() and second.path.is_file()

    def test_disk_layout_and_manifest(self, fitted_pipeline, tmp_path):
        pipeline, _ = fitted_pipeline
        registry = ModelRegistry(tmp_path / "reg")
        published = registry.publish(pipeline)
        fingerprint = pipeline_fingerprint(pipeline)
        entry_dir = tmp_path / "reg" / "sz" / fingerprint
        assert published.path == entry_dir / "v1.fxrz"
        manifest = json.loads((entry_dir / "manifest.json").read_text())
        assert manifest["latest"] == 1
        assert manifest["versions"]["1"]["compressor"] == "sz"

    def test_entries_and_fingerprints(self, fitted_pipeline, tmp_path):
        pipeline, _ = fitted_pipeline
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(pipeline)
        registry.publish(pipeline)
        entries = registry.entries()
        assert [e.version for e in entries] == [1, 2]
        assert registry.fingerprints("sz") == [pipeline_fingerprint(pipeline)]
        assert registry.fingerprints("zfp") == []


class TestConcurrentPublish:
    @pytest.mark.lifecycle
    def test_concurrent_publishers_get_distinct_versions(
        self, fitted_pipeline, tmp_path
    ):
        """The publish race: N threads, N distinct versions, no overwrite."""
        pipeline, _ = fitted_pipeline
        registry = ModelRegistry(tmp_path / "reg", max_loaded=8)
        published = []
        errors = []
        barrier = threading.Barrier(6)

        def publish():
            barrier.wait()
            try:
                published.append(registry.publish(pipeline))
            except Exception as exc:  # noqa: BLE001 — collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=publish) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        versions = sorted(p.version for p in published)
        assert versions == [1, 2, 3, 4, 5, 6]
        for item in published:
            assert item.path.is_file()
        manifest = json.loads(
            (published[0].path.parent / "manifest.json").read_text()
        )
        assert manifest["latest"] == 6
        assert sorted(map(int, manifest["versions"])) == versions

    @pytest.mark.lifecycle
    def test_stale_lock_is_broken(self, fitted_pipeline, tmp_path):
        import os
        import time as time_mod

        from repro.serving.registry import _LOCK

        pipeline, _ = fitted_pipeline
        registry = ModelRegistry(tmp_path / "reg")
        first = registry.publish(pipeline)
        lock = first.path.parent / _LOCK
        lock.write_text("12345")
        old = time_mod.time() - 120.0
        os.utime(lock, (old, old))
        second = registry.publish(pipeline)  # breaks the abandoned lock
        assert second.version == 2
        assert not lock.exists()


@pytest.mark.lifecycle
class TestPromoteRollback:
    def test_unpromoted_publish_leaves_latest(self, fitted_pipeline, tmp_path):
        pipeline, _ = fitted_pipeline
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(pipeline)
        candidate = registry.publish(pipeline, promote=False)
        assert candidate.version == 2
        assert registry.resolve("sz", version=LATEST).version == 1
        # The candidate is loadable by explicit version.
        assert registry.load("sz", version=2).is_fitted

    def test_promote_flips_alias_and_records_history(
        self, fitted_pipeline, tmp_path
    ):
        pipeline, _ = fitted_pipeline
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(pipeline)
        candidate = registry.publish(pipeline, promote=False)
        promoted = registry.promote(
            "sz", candidate.fingerprint, candidate.version, note="canary won"
        )
        assert promoted.version == 2
        assert registry.resolve("sz", version=LATEST).version == 2
        events = registry.history("sz")
        assert events[-1]["action"] == "promote"
        assert events[-1]["previous"] == 1
        assert events[-1]["note"] == "canary won"

    def test_promote_missing_version_raises(self, fitted_pipeline, tmp_path):
        pipeline, _ = fitted_pipeline
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(pipeline)
        with pytest.raises(InvalidConfiguration):
            registry.promote("sz", None, 99)

    def test_rollback_restores_previous_latest(
        self, fitted_pipeline, tmp_path
    ):
        pipeline, _ = fitted_pipeline
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(pipeline)
        candidate = registry.publish(pipeline, promote=False)
        registry.promote("sz", None, candidate.version)
        restored = registry.rollback("sz", note="post-promotion regression")
        assert restored.version == 1
        assert registry.resolve("sz", version=LATEST).version == 1
        assert registry.history("sz")[-1]["action"] == "rollback"

    def test_rollback_without_predecessor_raises(
        self, fitted_pipeline, tmp_path
    ):
        pipeline, _ = fitted_pipeline
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(pipeline)
        with pytest.raises(InvalidConfiguration):
            registry.rollback("sz")


class TestLoad:
    def test_latest_alias_tracks_newest(self, fitted_pipeline, tmp_path):
        pipeline, train = fitted_pipeline
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(pipeline)
        registry.publish(pipeline)
        assert registry.resolve("sz", version=LATEST).version == 2
        loaded = registry.load("sz")
        probe = train[0]
        assert loaded.estimate_config(probe, 6.0).config == pytest.approx(
            pipeline.estimate_config(probe, 6.0).config
        )

    def test_publish_warms_lru(self, fitted_pipeline, tmp_path):
        pipeline, _ = fitted_pipeline
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(pipeline)
        assert registry.load("sz") is pipeline
        assert registry.load_hits == 1 and registry.load_misses == 0

    def test_lru_eviction_forces_reload(self, fitted_pipeline, tmp_path):
        pipeline, _ = fitted_pipeline
        registry = ModelRegistry(tmp_path / "reg", max_loaded=1)
        registry.publish(pipeline)
        registry.publish(pipeline)  # v2 evicts warm v1
        assert registry.evictions == 1
        v1 = registry.load("sz", version=1)  # miss: deserialized from disk
        assert registry.load_misses == 1
        assert v1 is not pipeline
        assert v1.is_fitted

    def test_missing_manifest_falls_back_to_scan(
        self, fitted_pipeline, tmp_path
    ):
        pipeline, _ = fitted_pipeline
        registry = ModelRegistry(tmp_path / "reg")
        published = registry.publish(pipeline)
        (published.path.parent / "manifest.json").unlink()
        assert registry.resolve("sz", version=LATEST).version == 1

    def test_unknown_lookups_raise(self, fitted_pipeline, tmp_path):
        pipeline, _ = fitted_pipeline
        registry = ModelRegistry(tmp_path / "reg")
        with pytest.raises(InvalidConfiguration):
            registry.resolve("sz")  # nothing published yet
        registry.publish(pipeline)
        with pytest.raises(InvalidConfiguration):
            registry.resolve("zfp")
        with pytest.raises(InvalidConfiguration):
            registry.resolve("sz", version=99)
        with pytest.raises(InvalidConfiguration):
            registry.resolve("sz", version="new")

    def test_max_loaded_validated(self, tmp_path):
        with pytest.raises(InvalidConfiguration):
            ModelRegistry(tmp_path, max_loaded=0)


@pytest.mark.robustness
class TestCorruptionFallback:
    """Serving survives corrupt manifests and corrupt latest artifacts."""

    @staticmethod
    def _entry_dir(registry, published):
        return published.path.parent

    def test_corrupt_manifest_warns_and_serves_newest_on_disk(
        self, fitted_pipeline, tmp_path
    ):
        pipeline, _ = fitted_pipeline
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(pipeline)
        second = registry.publish(pipeline)
        (second.path.parent / "manifest.json").write_text("{not json")
        # Two warnings fire: the unreadable manifest itself, then the
        # alias-less fallback to the newest on-disk version.
        with pytest.warns(RuntimeWarning, match="unreadable|on-disk"):
            resolved = registry.resolve("sz", version=LATEST)
        assert resolved.version == 2

    def test_aliasless_manifest_warns_and_falls_back(
        self, fitted_pipeline, tmp_path
    ):
        pipeline, _ = fitted_pipeline
        registry = ModelRegistry(tmp_path / "reg")
        published = registry.publish(pipeline)
        registry.publish(pipeline)
        manifest = published.path.parent / "manifest.json"
        manifest.write_text(json.dumps({"versions": {}}))  # no 'latest'
        with pytest.warns(RuntimeWarning, match="newest on-disk version v2"):
            resolved = registry.resolve("sz", version=LATEST)
        assert resolved.version == 2

    def test_publish_after_corrupt_manifest_keeps_versions(
        self, fitted_pipeline, tmp_path
    ):
        pipeline, _ = fitted_pipeline
        registry = ModelRegistry(tmp_path / "reg")
        first = registry.publish(pipeline)
        second = registry.publish(pipeline)
        before = (first.path.read_bytes(), second.path.read_bytes())
        (second.path.parent / "manifest.json").write_text("{not json")
        third = registry.publish(pipeline)
        # The version counter is derived from the on-disk files, so a
        # trashed manifest must not reset it and overwrite v1.
        assert third.version == 3
        assert first.path.read_bytes() == before[0]
        assert second.path.read_bytes() == before[1]
        manifest = json.loads(
            (third.path.parent / "manifest.json").read_text()
        )
        assert manifest["latest"] == 3

    def test_corrupt_latest_artifact_degrades_to_older_version(
        self, fitted_pipeline, tmp_path
    ):
        pipeline, train = fitted_pipeline
        publisher = ModelRegistry(tmp_path / "reg")
        publisher.publish(pipeline)
        second = publisher.publish(pipeline)
        second.path.write_bytes(second.path.read_bytes()[:200])  # truncate v2
        registry = ModelRegistry(tmp_path / "reg")  # cold LRU -> disk load
        with pytest.warns(
            RuntimeWarning, match="serving older readable version v1"
        ):
            served = registry.load("sz")
        probe = train[0]
        assert served.estimate_config(probe, 6.0).config == pytest.approx(
            pipeline.estimate_config(probe, 6.0).config
        )

    def test_explicit_version_still_fails_loudly(
        self, fitted_pipeline, tmp_path
    ):
        from repro.errors import CorruptStreamError

        pipeline, _ = fitted_pipeline
        publisher = ModelRegistry(tmp_path / "reg")
        publisher.publish(pipeline)
        second = publisher.publish(pipeline)
        second.path.write_bytes(second.path.read_bytes()[:200])
        registry = ModelRegistry(tmp_path / "reg")
        with pytest.raises(CorruptStreamError):
            registry.load("sz", version=2)

    def test_every_version_corrupt_raises(self, fitted_pipeline, tmp_path):
        from repro.errors import CorruptStreamError

        pipeline, _ = fitted_pipeline
        publisher = ModelRegistry(tmp_path / "reg")
        for published in (
            publisher.publish(pipeline),
            publisher.publish(pipeline),
        ):
            published.path.write_bytes(published.path.read_bytes()[:100])
        registry = ModelRegistry(tmp_path / "reg")
        with pytest.raises(CorruptStreamError):
            registry.load("sz")


@pytest.mark.objective
class TestQualityArtifacts:
    def test_publish_and_load_beside_ratio_models(
        self, fitted_pipeline, tmp_path
    ):
        from repro.core.objective import QualityModel

        pipeline, _ = fitted_pipeline
        registry = ModelRegistry(tmp_path / "reg")
        published = registry.publish(pipeline)
        quality = QualityModel(compressor="sz", offset_db=1.5)
        coordinate = registry.publish_quality(
            quality, "sz", published.fingerprint
        )
        assert coordinate.version == 1
        assert coordinate.path == published.path.parent / "q1.json"
        restored = registry.load_quality("sz", published.fingerprint)
        assert restored == quality

    def test_quality_versions_are_independent(self, fitted_pipeline, tmp_path):
        from repro.core.objective import QualityModel

        pipeline, _ = fitted_pipeline
        registry = ModelRegistry(tmp_path / "reg")
        published = registry.publish(pipeline)
        registry.publish(pipeline)  # ratio v2
        first = registry.publish_quality(
            QualityModel(offset_db=1.0), "sz", published.fingerprint
        )
        second = registry.publish_quality(
            QualityModel(offset_db=2.0), "sz", published.fingerprint
        )
        assert (first.version, second.version) == (1, 2)
        # Ratio resolution is untouched by quality publishes.
        assert registry.resolve("sz", published.fingerprint).version == 2
        latest = registry.load_quality("sz", published.fingerprint)
        assert latest.offset_db == 2.0

    def test_fingerprint_resolves_through_ratio_entry(
        self, fitted_pipeline, tmp_path
    ):
        from repro.core.objective import QualityModel

        pipeline, _ = fitted_pipeline
        registry = ModelRegistry(tmp_path / "reg")
        published = registry.publish(pipeline)
        registry.publish_quality(
            QualityModel(offset_db=0.5), "sz", published.fingerprint
        )
        coordinate = registry.resolve_quality("sz")
        assert coordinate.fingerprint == published.fingerprint

    def test_missing_quality_model_raises(self, fitted_pipeline, tmp_path):
        pipeline, _ = fitted_pipeline
        registry = ModelRegistry(tmp_path / "reg")
        published = registry.publish(pipeline)
        with pytest.raises(InvalidConfiguration):
            registry.resolve_quality("sz", published.fingerprint)

    def test_pre_objective_entries_still_serve(
        self, fitted_pipeline, tmp_path
    ):
        """A registry written before quality artifacts loads unchanged."""
        pipeline, train = fitted_pipeline
        registry = ModelRegistry(tmp_path / "reg")
        published = registry.publish(pipeline)
        manifest_path = published.path.parent / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest.pop("quality_latest", None)
        manifest.pop("quality_versions", None)
        manifest_path.write_text(json.dumps(manifest))
        served = ModelRegistry(tmp_path / "reg").load("sz")
        probe = train[0]
        assert served.estimate_config(probe, 6.0).config == pytest.approx(
            pipeline.estimate_config(probe, 6.0).config
        )
