"""Unit tests of the runtime session layer.

Pins the RuntimeConfig layering contract (defaults -> env -> TOML
profile -> explicit overrides, with provenance naming the winning
layer), the RuntimeContext lifecycle (lazy resources, deterministic
teardown, ambient observability install/restore) and the deprecation
shims bridging the legacy per-layer kwargs.
"""

from __future__ import annotations

import warnings

import pytest

from repro import obs
from repro.config import DEFAULT_SEED
from repro.errors import InvalidConfiguration
from repro.runtime import (
    RuntimeConfig,
    RuntimeContext,
    UNSET,
    legacy,
    legacy_context,
    reset_deprecation_warnings,
)

pytestmark = pytest.mark.runtime


class TestConfigLayering:
    def test_defaults(self):
        config = RuntimeConfig.resolve(env={})
        assert config.jobs == 1
        assert config.backend == "auto"
        assert config.trace == "" and config.metrics == ""
        assert config.seed == DEFAULT_SEED
        assert config.fallback == "fraz"
        assert config.min_confidence == 0.5
        assert all(layer == "default" for layer in config.provenance.values())

    def test_env_layer(self):
        config = RuntimeConfig.resolve(
            env={"REPRO_JOBS": "3", "REPRO_FALLBACK": "curve"}
        )
        assert config.jobs == 3
        assert config.fallback == "curve"
        assert config.provenance["jobs"] == "env"
        assert config.provenance["seed"] == "default"

    def test_profile_layer_beats_env(self, tmp_path):
        profile = tmp_path / "runtime.toml"
        profile.write_text("[runtime]\njobs = 5\nmin_confidence = 0.8\n")
        config = RuntimeConfig.resolve(
            profile=profile, env={"REPRO_JOBS": "3", "REPRO_SEED": "11"}
        )
        assert config.jobs == 5  # profile wins over env
        assert config.seed == 11  # env survives where the profile is silent
        assert config.min_confidence == 0.8
        assert config.provenance["jobs"] == "profile"
        assert config.provenance["seed"] == "env"

    def test_profile_named_by_env(self, tmp_path):
        profile = tmp_path / "runtime.toml"
        profile.write_text("[runtime]\nseed = 99\n")
        config = RuntimeConfig.resolve(env={"REPRO_PROFILE": str(profile)})
        assert config.seed == 99
        assert config.provenance["seed"] == "profile"

    def test_override_beats_everything(self, tmp_path):
        profile = tmp_path / "runtime.toml"
        profile.write_text("[runtime]\njobs = 5\n")
        config = RuntimeConfig.resolve(
            profile=profile, env={"REPRO_JOBS": "3"}, jobs=7
        )
        assert config.jobs == 7
        assert config.provenance["jobs"] == "override"

    def test_none_override_means_unset(self):
        config = RuntimeConfig.resolve(env={"REPRO_JOBS": "3"}, jobs=None)
        assert config.jobs == 3

    def test_unknown_override_rejected(self):
        with pytest.raises(InvalidConfiguration, match="unknown runtime option"):
            RuntimeConfig.resolve(env={}, workers=4)

    def test_unknown_profile_key_rejected(self, tmp_path):
        profile = tmp_path / "runtime.toml"
        profile.write_text("[runtime]\nworkers = 4\n")
        with pytest.raises(InvalidConfiguration, match="unknown option"):
            RuntimeConfig.resolve(profile=profile, env={})

    def test_bad_env_value_blames_the_variable(self):
        with pytest.raises(InvalidConfiguration, match="REPRO_JOBS"):
            RuntimeConfig.resolve(env={"REPRO_JOBS": "many"})

    def test_validation(self):
        with pytest.raises(InvalidConfiguration):
            RuntimeConfig(backend="mpi")
        with pytest.raises(InvalidConfiguration):
            RuntimeConfig(fallback="panic")
        with pytest.raises(InvalidConfiguration):
            RuntimeConfig(min_confidence=1.5)
        with pytest.raises(InvalidConfiguration):
            RuntimeConfig(retry_attempts=0)

    def test_replace_marks_provenance(self):
        config = RuntimeConfig.resolve(env={}).replace(jobs=4)
        assert config.jobs == 4
        assert config.provenance["jobs"] == "override"

    def test_serving_knobs_layer_like_any_other(self, tmp_path):
        config = RuntimeConfig.resolve(
            env={
                "REPRO_BREAKER_FAILURES": "3",
                "REPRO_BREAKER_RESET": "1.5",
                "REPRO_DEADLINE": "2.5",
            }
        )
        assert config.breaker_failures == 3
        assert config.breaker_reset == 1.5
        assert config.deadline == 2.5
        assert config.provenance["breaker_failures"] == "env"
        profile = tmp_path / "runtime.toml"
        profile.write_text("[runtime]\nbreaker_failures = 7\ndeadline = 0.5\n")
        layered = RuntimeConfig.resolve(
            profile=profile,
            env={"REPRO_BREAKER_FAILURES": "3", "REPRO_BREAKER_RESET": "1.5"},
            deadline=9.0,
        )
        assert layered.breaker_failures == 7  # profile beats env
        assert layered.breaker_reset == 1.5  # env survives profile silence
        assert layered.deadline == 9.0  # override beats profile
        assert layered.provenance["deadline"] == "override"

    def test_serving_knob_validation(self):
        with pytest.raises(InvalidConfiguration):
            RuntimeConfig(breaker_failures=0)
        with pytest.raises(InvalidConfiguration):
            RuntimeConfig(breaker_reset=-0.1)
        with pytest.raises(InvalidConfiguration):
            RuntimeConfig(deadline=-1.0)


class TestContextLifecycle:
    def test_serial_config_has_no_executor(self):
        with RuntimeContext(env={}) as ctx:
            assert ctx.executor is None

    def test_parallel_config_builds_executor_once(self):
        # Force the process backend: the "auto" default collapses to
        # serial (no executor) on 1-CPU hosts.
        with RuntimeContext(env={}, jobs=2, backend="process") as ctx:
            executor = ctx.executor
            assert executor is not None
            assert executor.n_jobs == 2
            assert executor._ctx is ctx
            assert ctx.executor is executor
        assert executor.closed

    def test_memo_is_lazy_and_shared(self):
        with RuntimeContext(env={}) as ctx:
            assert ctx.memo is ctx.memo

    def test_borrowed_executor_not_shut_down(self):
        from repro.parallel import ParallelExecutor

        executor = ParallelExecutor(n_jobs=2, backend="thread")
        ctx = RuntimeContext(env={}, executor=executor)
        ctx.close()
        assert not executor.closed
        executor.shutdown()

    def test_close_is_idempotent_and_final(self):
        ctx = RuntimeContext(env={}, jobs=2)
        ctx.close()
        ctx.close()
        assert ctx.closed
        with pytest.raises(InvalidConfiguration, match="closed RuntimeContext"):
            ctx.executor
        with pytest.raises(InvalidConfiguration, match="closed RuntimeContext"):
            ctx.memo

    def test_derive_seeds_match_executor_derivation(self):
        from repro.parallel.executor import derive_seeds

        with RuntimeContext(env={}, seed=42) as ctx:
            assert ctx.derive_seeds(4) == derive_seeds(42, 4)

    def test_retry_policy_from_config(self):
        with RuntimeContext(env={}, retry_attempts=7, retry_base_delay=0.1) as ctx:
            policy = ctx.retry_policy
            assert policy.max_attempts == 7
            assert policy.base_delay == 0.1

    def test_guard_options(self):
        with RuntimeContext(env={}, fallback="curve", min_confidence=0.9) as ctx:
            assert ctx.guard_options == {
                "fallback": "curve",
                "min_confidence": 0.9,
            }

    def test_trace_and_metrics_export_on_close(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.txt"
        ctx = RuntimeContext(env={}, trace=str(trace), metrics=str(metrics))
        with ctx:
            with obs.span("unit.work"):
                pass
            ctx.registry.counter("repro_unit_total", "unit test counter").inc()
        assert ctx.exported_spans == 1
        spans = obs.load_trace(trace)
        assert [s.name for s in spans] == ["unit.work"]
        assert "repro_unit_total" in metrics.read_text()
        assert any("span" in note for note in ctx.teardown_notes)
        assert any("metrics" in note for note in ctx.teardown_notes)

    def test_enter_installs_and_close_restores_obs(self, tmp_path):
        previous_tracer = obs.get_tracer()
        ctx = RuntimeContext(env={}, trace=str(tmp_path / "t.jsonl"))
        with ctx:
            assert obs.get_tracer() is ctx.tracer
        assert obs.get_tracer() is previous_tracer

    def test_plain_context_leaves_obs_alone(self):
        previous = (obs.get_tracer(), obs.get_registry())
        with RuntimeContext(env={}):
            assert (obs.get_tracer(), obs.get_registry()) == previous

    def test_config_and_overrides_are_exclusive(self):
        with pytest.raises(InvalidConfiguration, match="not both"):
            RuntimeContext(RuntimeConfig(), jobs=2)

    def test_from_args_resolution(self):
        import argparse

        from repro.runtime import add_runtime_args

        parser = argparse.ArgumentParser()
        add_runtime_args(parser)
        args = parser.parse_args(["--jobs", "2", "--fallback", "curve"])
        ctx = RuntimeContext.from_args(args, env={"REPRO_SEED": "17"})
        try:
            assert ctx.config.jobs == 2
            assert ctx.config.fallback == "curve"
            assert ctx.config.seed == 17  # env fills what flags left unset
        finally:
            ctx.close()

    def test_breaker_options_mirror_config(self):
        with RuntimeContext(
            env={}, breaker_failures=2, breaker_reset=0.75
        ) as ctx:
            assert ctx.breaker_options == {
                "failure_threshold": 2,
                "reset_seconds": 0.75,
            }

    def test_adopted_shm_unlinked_at_close(self):
        from repro.parallel.shm import SharedNDArray

        import numpy as np

        ctx = RuntimeContext(env={})
        handle = SharedNDArray.from_array(np.arange(8, dtype=np.float32))
        descriptor = handle.descriptor
        ctx.adopt_shm(handle)
        ctx.close()
        with pytest.raises(FileNotFoundError):
            SharedNDArray.attach(descriptor)
        assert any("shared-memory" in note for note in ctx.teardown_notes)

    def test_released_shm_stays_with_its_owner(self):
        from repro.parallel.shm import SharedNDArray

        import numpy as np

        ctx = RuntimeContext(env={})
        handle = SharedNDArray.from_array(np.arange(8, dtype=np.float32))
        descriptor = handle.descriptor
        ctx.adopt_shm(handle)
        ctx.release_shm(handle)
        ctx.close()
        attached = SharedNDArray.attach(descriptor)  # still alive
        attached.close()
        handle.close()
        handle.unlink()
        assert not any("shared-memory" in note for note in ctx.teardown_notes)

    def test_adopt_after_close_unlinks_immediately(self):
        from repro.parallel.shm import SharedNDArray

        import numpy as np

        ctx = RuntimeContext(env={})
        ctx.close()
        handle = SharedNDArray.from_array(np.arange(4, dtype=np.float32))
        descriptor = handle.descriptor
        ctx.adopt_shm(handle)
        with pytest.raises(FileNotFoundError):
            SharedNDArray.attach(descriptor)

    def test_spec_roundtrip_forces_serial_child(self, tmp_path):
        with RuntimeContext(
            env={}, jobs=4, seed=123, trace=str(tmp_path / "t.jsonl"),
            breaker_failures=2, breaker_reset=0.5, deadline=4.0,
        ) as ctx:
            child = RuntimeContext.from_spec(ctx.spec())
            assert child.config.jobs == 1
            assert child.config.backend == "serial"
            assert child.config.trace == "" and child.config.metrics == ""
            assert child.config.seed == 123
            # supervision policy rides the spec into shard children
            assert child.config.breaker_failures == 2
            assert child.config.breaker_reset == 0.5
            assert child.config.deadline == 4.0
            assert child.executor is None
            child.close()


class TestDeprecationShims:
    @pytest.fixture(autouse=True)
    def _fresh_warnings(self):
        reset_deprecation_warnings()
        yield
        reset_deprecation_warnings()

    def test_legacy_passthrough_warns_once_per_owner(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert legacy("Thing", "n_jobs", 4) == 4
            assert legacy("Thing", "n_jobs", 8) == 8
            assert legacy("Other", "n_jobs", 2) == 2
        messages = [str(w.message) for w in caught]
        assert len(messages) == 2  # one per (owner, kwarg) pair
        assert any("Thing: the n_jobs=" in m for m in messages)
        assert any("Other: the n_jobs=" in m for m in messages)

    def test_unset_and_none_stay_silent(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert legacy("Thing", "memo", UNSET) is None
            assert legacy("Thing", "memo", None) is None
        assert caught == []

    def test_legacy_context_without_legacy_values_is_identity(self):
        with RuntimeContext(env={}) as ctx:
            assert legacy_context(ctx) is ctx
        assert legacy_context(None) is None

    def test_legacy_context_wraps_jobs_without_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "555")
        bridged = legacy_context(None, n_jobs=2)
        try:
            assert bridged.config.jobs == 2
            assert bridged.config.seed == DEFAULT_SEED  # env ignored
        finally:
            bridged.close()

    def test_legacy_context_borrows_base_memo(self):
        with RuntimeContext(env={}) as base:
            memo = base.memo
            bridged = legacy_context(base, n_jobs=2)
            try:
                assert bridged is not base
                assert bridged.memo is memo
                assert bridged.config.jobs == 2
            finally:
                bridged.close()

    def test_consumer_kwargs_warn_once(self, smooth_field3d):
        from repro.baselines.fraz import FRaZ
        from repro.compressors import get_compressor

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            FRaZ(get_compressor("sz"), executor=None)  # None = not provided
            assert caught == []
            FRaZ(get_compressor("sz"), memo=None)
            assert caught == []

    def test_ctx_first_constructors_stay_silent(self, smooth_field3d):
        from repro.baselines.fraz import FRaZ
        from repro.compressors import get_compressor
        from repro.core.pipeline import FXRZ

        with RuntimeContext(env={}) as ctx:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("error", DeprecationWarning)
                FRaZ(get_compressor("sz"), ctx=ctx)
                FXRZ(get_compressor("sz"), ctx=ctx)
            assert caught == []
