"""Unit tests for the batched kernel layer (arena + backend registry)."""

import numpy as np
import pytest

from repro.compressors.kernels import (
    ArenaStats,
    KernelArena,
    KernelBackend,
    NumpyKernelBackend,
    ReferenceKernelBackend,
    available_kernel_backends,
    get_kernel_backend,
    register_kernel_backend,
    use_kernel_backend,
)
from repro.compressors.quantizer import LinearQuantizer
from repro.errors import CorruptStreamError, InvalidConfiguration

pytestmark = pytest.mark.kernels


class TestKernelArena:
    def test_scratch_shape_and_dtype(self):
        arena = KernelArena()
        view = arena.scratch("t", (3, 4), np.float64)
        assert view.shape == (3, 4)
        assert view.dtype == np.float64
        assert view.flags.c_contiguous

    def test_same_tag_reuses_buffer(self):
        arena = KernelArena()
        a = arena.scratch("t", 100)
        b = arena.scratch("t", 100)
        assert np.shares_memory(a, b)
        assert arena.stats.reuses == 1

    def test_smaller_request_reuses_buffer(self):
        arena = KernelArena()
        arena.scratch("t", 100)
        view = arena.scratch("t", (5, 7))
        assert view.shape == (5, 7)
        assert arena.stats.reuses == 1
        assert arena.stats.buffers == 1

    def test_larger_request_grows_buffer(self):
        arena = KernelArena()
        arena.scratch("t", 10)
        big = arena.scratch("t", 1000)
        assert big.size == 1000
        assert arena.stats.reuses == 0
        assert arena.stats.buffers == 1

    def test_distinct_tags_do_not_alias(self):
        arena = KernelArena()
        a = arena.scratch("a", 50)
        b = arena.scratch("b", 50)
        assert not np.shares_memory(a, b)
        assert arena.stats.buffers == 2

    def test_same_tag_distinct_dtypes_do_not_alias(self):
        arena = KernelArena()
        f = arena.scratch("t", 50, np.float64)
        i = arena.scratch("t", 50, np.int64)
        assert not np.shares_memory(f, i)

    def test_zeros_is_zero_filled_on_reuse(self):
        arena = KernelArena()
        view = arena.scratch("t", 8)
        view[...] = 7.0
        again = arena.zeros("t", 8)
        assert (again == 0).all()

    def test_int_shape_means_1d(self):
        arena = KernelArena()
        assert arena.scratch("t", 5).shape == (5,)

    def test_stats_counts_and_bytes(self):
        arena = KernelArena()
        arena.scratch("t", 10, np.float64)
        arena.scratch("t", 10, np.float64)
        stats = arena.stats
        assert isinstance(stats, ArenaStats)
        assert stats.requests == 2
        assert stats.reuses == 1
        assert stats.nbytes == 80
        assert stats.reuse_ratio == 0.5

    def test_empty_arena_reuse_ratio(self):
        assert KernelArena().stats.reuse_ratio == 0.0

    def test_clear_drops_buffers_keeps_counters(self):
        arena = KernelArena()
        arena.scratch("t", 10)
        arena.clear()
        stats = arena.stats
        assert stats.buffers == 0 and stats.nbytes == 0
        assert stats.requests == 1


class TestBackendRegistry:
    def test_builtin_backends_registered(self):
        names = available_kernel_backends()
        assert "numpy" in names and "reference" in names

    def test_default_is_numpy(self):
        assert get_kernel_backend().name == "numpy"

    def test_explicit_name_wins(self):
        assert get_kernel_backend("reference").name == "reference"

    def test_unknown_name_rejected(self):
        with pytest.raises(InvalidConfiguration):
            get_kernel_backend("cuda-imaginary")

    def test_use_kernel_backend_scopes_override(self):
        with use_kernel_backend("reference") as backend:
            assert backend.name == "reference"
            assert get_kernel_backend().name == "reference"
        assert get_kernel_backend().name == "numpy"

    def test_use_kernel_backend_nests(self):
        with use_kernel_backend("reference"):
            with use_kernel_backend("numpy"):
                assert get_kernel_backend().name == "numpy"
            assert get_kernel_backend().name == "reference"

    def test_env_var_selects_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "reference")
        assert get_kernel_backend().name == "reference"

    def test_register_rejects_non_backend(self):
        with pytest.raises(InvalidConfiguration):
            register_kernel_backend(object())

    def test_register_custom_backend(self):
        class Custom(KernelBackend):
            name = "custom-test"

        try:
            register_kernel_backend(Custom())
            assert get_kernel_backend("custom-test").name == "custom-test"
        finally:
            from repro.compressors import kernels

            kernels._BACKENDS.pop("custom-test", None)


@pytest.mark.parametrize(
    "backend", [NumpyKernelBackend(), ReferenceKernelBackend()]
)
class TestBackendPasses:
    def test_encode_then_decode_reconstructs(self, backend, rng):
        target = rng.normal(size=64)
        pred_enc = np.full(64, target.mean())
        pred_dec = pred_enc.copy()
        quantizer = LinearQuantizer(1e-3)
        codes = np.empty(64, dtype=np.int64)
        arena = KernelArena()
        outliers = backend.encode_block(
            target, pred_enc, quantizer, codes, arena
        )
        used = backend.decode_block(
            codes, pred_dec, quantizer, outliers, 0, arena
        )
        assert used == outliers.size
        np.testing.assert_array_equal(pred_dec, pred_enc)
        assert np.abs(pred_dec - target).max() <= 1e-3 * (1 + 1e-12)

    def test_outliers_reproduce_exact_values(self, backend):
        # A huge residual overflows the code range and must travel as
        # a verbatim outlier.
        target = np.array([0.0, 1e18, 0.0])
        pred = np.zeros(3)
        quantizer = LinearQuantizer(1e-9)
        codes = np.empty(3, dtype=np.int64)
        arena = KernelArena()
        outliers = backend.encode_block(target, pred, quantizer, codes, arena)
        assert outliers.tolist() == [1e18]
        assert codes[1] == quantizer.sentinel
        assert pred[1] == 1e18

    def test_decode_short_outlier_stream_raises(self, backend):
        codes = np.array([0, 0, 0], dtype=np.int64)
        quantizer = LinearQuantizer(1e-3)
        codes[1] = quantizer.sentinel
        with pytest.raises(CorruptStreamError):
            backend.decode_block(
                codes,
                np.zeros(3),
                quantizer,
                np.zeros(0, dtype=np.float64),
                0,
                KernelArena(),
            )
