"""Unit tests for field-series persistence."""

import numpy as np
import pytest

from repro.datasets.base import FieldSeries
from repro.datasets.io import load_series_file, save_series
from repro.errors import DatasetError


@pytest.fixture()
def series(rng):
    s = FieldSeries("nyx", "temperature")
    for t in range(3):
        s.add(f"t{t}", rng.standard_normal((8, 8, 8)).astype(np.float32))
    return s


class TestSeriesIO:
    def test_roundtrip(self, series, tmp_path):
        path = tmp_path / "series.npz"
        save_series(series, path)
        restored = load_series_file(path)
        assert restored.application == "nyx"
        assert restored.field == "temperature"
        assert [s.label for s in restored] == ["t0", "t1", "t2"]
        for a, b in zip(series, restored):
            assert np.array_equal(a.data, b.data)
            assert a.data.dtype == b.data.dtype

    def test_empty_series_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            save_series(FieldSeries("a", "b"), tmp_path / "x.npz")

    def test_garbage_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, unrelated=np.arange(3))
        with pytest.raises(DatasetError):
            load_series_file(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises((DatasetError, FileNotFoundError)):
            load_series_file(tmp_path / "nope.npz")

    def test_registry_series_roundtrip(self, tmp_path):
        from repro.datasets import load_series

        original = load_series("hurricane", "QCLOUD")
        path = tmp_path / "qcloud.npz"
        save_series(original, path)
        restored = load_series_file(path)
        assert len(restored) == len(original)
        assert np.array_equal(
            restored.snapshots[-1].data, original.snapshots[-1].data
        )
