"""Unit tests for the CLI argument parser (no workflows executed)."""

import pytest

from repro.cli import build_parser


@pytest.fixture(scope="module")
def parser():
    return build_parser()


class TestParser:
    def test_train_defaults(self, parser):
        args = parser.parse_args(["train", "a.npy", "b.npy", "--model", "m.npz"])
        assert args.inputs == ["a.npy", "b.npy"]
        assert args.compressor == "sz"
        assert args.stride == 4
        assert args.stationary_points == 25
        assert not args.no_adjustment

    def test_train_overrides(self, parser):
        args = parser.parse_args(
            [
                "train", "a.npy", "--model", "m.npz", "--compressor", "zfp",
                "--stride", "2", "--no-adjustment",
            ]
        )
        assert args.compressor == "zfp"
        assert args.stride == 2
        assert args.no_adjustment

    def test_unknown_compressor_rejected(self, parser):
        with pytest.raises(SystemExit):
            parser.parse_args(
                ["train", "a.npy", "--model", "m.npz", "--compressor", "lz4"]
            )

    def test_estimate_accepts_any_target_kind(self, parser):
        # The target moved from a required --ratio to one-of-four
        # objective flags; absence is a command-time ReproError now
        # (the parser cannot express "exactly one of").
        from repro.cli import _objective_from_args

        args = parser.parse_args(["estimate", "a.npy", "--model", "m.npz"])
        assert _objective_from_args(args) is None
        args = parser.parse_args(
            ["estimate", "a.npy", "--model", "m.npz", "--target-psnr", "60"]
        )
        assert _objective_from_args(args).canonical == "psnr:60"
        args = parser.parse_args(
            ["estimate", "a.npy", "--model", "m.npz", "--target-ssim", "0.99"]
        )
        assert _objective_from_args(args).canonical == "ssim:0.99"
        args = parser.parse_args(
            ["estimate", "a.npy", "--model", "m.npz", "--target-ratio", "12"]
        )
        assert _objective_from_args(args).canonical == "ratio:12"

    def test_conflicting_targets_rejected(self, parser):
        from repro.cli import _objective_from_args
        from repro.errors import ReproError

        args = parser.parse_args(
            ["estimate", "a.npy", "--model", "m.npz", "--ratio", "8",
             "--target-psnr", "60"]
        )
        with pytest.raises(ReproError):
            _objective_from_args(args)

    def test_frontier_flags(self, parser):
        args = parser.parse_args(
            ["estimate", "a.npy", "--model", "m.npz",
             "--frontier", "cr>=10", "--frontier-points", "8"]
        )
        assert args.frontier == "cr>=10"
        assert args.frontier_points == 8

    def test_compress_round_trip_args(self, parser):
        args = parser.parse_args(
            ["compress", "a.npy", "--model", "m.npz", "--ratio", "12.5",
             "--output", "a.fxrz"]
        )
        assert args.ratio == 12.5
        assert args.output == "a.fxrz"

    def test_search_defaults(self, parser):
        args = parser.parse_args(["search", "a.npy", "--ratio", "8"])
        assert args.iterations == 15
        assert args.compressor == "sz"

    def test_export_args(self, parser):
        args = parser.parse_args(["export", "nyx-1", "temperature", "--out", "d"])
        assert args.dataset == "nyx-1"
        assert args.field == "temperature"

    def test_command_required(self, parser):
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_all_compressors_offered(self, parser):
        for name in ("sz", "sz2", "zfp", "fpzip", "mgard", "digit"):
            args = parser.parse_args(
                ["search", "a.npy", "--ratio", "5", "--compressor", name]
            )
            assert args.compressor == name


@pytest.mark.robustness
class TestGuardFlags:
    def test_estimate_defaults(self, parser):
        # Parser defaults are None so env/TOML-profile layers can apply;
        # the resolved policy defaults live in RuntimeConfig.
        args = parser.parse_args(
            ["estimate", "a.npy", "--model", "m.npz", "--ratio", "10"]
        )
        assert args.fallback is None
        assert args.min_confidence is None
        from repro.runtime import RuntimeContext

        ctx = RuntimeContext.from_args(args, env={})
        assert ctx.config.fallback == "fraz"
        assert ctx.config.min_confidence == 0.5
        ctx.close()

    def test_fallback_choices(self, parser):
        for choice in ("none", "curve", "fraz"):
            args = parser.parse_args(
                ["compress", "a.npy", "--model", "m.npz", "--ratio", "10",
                 "--output", "o", "--fallback", choice]
            )
            assert args.fallback == choice

    def test_bad_fallback_rejected(self, parser):
        with pytest.raises(SystemExit):
            parser.parse_args(
                ["estimate", "a.npy", "--model", "m.npz", "--ratio", "10",
                 "--fallback", "panic"]
            )

    def test_min_confidence_override(self, parser):
        args = parser.parse_args(
            ["estimate", "a.npy", "--model", "m.npz", "--ratio", "10",
             "--min-confidence", "0.9"]
        )
        assert args.min_confidence == 0.9


@pytest.mark.robustness
class TestDumpFlags:
    def test_defaults(self, parser):
        args = parser.parse_args(["dump"])
        assert args.ranks == 1024
        assert args.fault_seed == 0
        assert args.fail_prob == 0.0
        assert args.retries == 4
        assert not args.no_retry

    def test_fault_knobs(self, parser):
        args = parser.parse_args(
            ["dump", "--ranks", "64", "--fault-seed", "7",
             "--fail-prob", "0.12", "--straggler-prob", "0.1",
             "--write-error-prob", "0.05", "--retries", "8",
             "--base-delay", "0.1"]
        )
        assert args.ranks == 64
        assert args.fault_seed == 7
        assert args.fail_prob == 0.12
        assert args.straggler_prob == 0.1
        assert args.write_error_prob == 0.05
        assert args.retries == 8
        assert args.base_delay == 0.1

    def test_no_retry_flag(self, parser):
        args = parser.parse_args(["dump", "--no-retry"])
        assert args.no_retry


@pytest.mark.lifecycle
class TestLifecycleFlags:
    def test_outcome_log_rides_the_runtime_group(self, parser):
        args = parser.parse_args(
            ["estimate", "data.npy", "--model", "m.fxrz", "--ratio", "8",
             "--outcome-log", "/tmp/o.jsonl"]
        )
        assert args.outcome_log == "/tmp/o.jsonl"

    def test_outcomes_report_takes_a_log(self, parser):
        args = parser.parse_args(["outcomes-report", "o.jsonl"])
        assert args.log == "o.jsonl"

    def test_retrain_defaults(self, parser):
        args = parser.parse_args(
            ["retrain", "--registry", "reg", "--outcomes", "o.jsonl"]
        )
        assert args.registry == "reg"
        assert args.compressor == "sz"
        assert args.fingerprint == ""
        assert args.min_samples == 64
        assert args.canary_fraction == 0.25
        assert args.canary_margin == 0.0
        assert args.oversample == 4
        assert not args.no_promote

    def test_retrain_overrides(self, parser):
        args = parser.parse_args(
            ["retrain", "--registry", "reg", "--outcomes", "o.jsonl",
             "--compressor", "zfp", "--fingerprint", "abc",
             "--min-samples", "8", "--canary-fraction", "0.5",
             "--canary-margin", "0.05", "--oversample", "2", "--no-promote"]
        )
        assert args.compressor == "zfp"
        assert args.fingerprint == "abc"
        assert args.min_samples == 8
        assert args.canary_fraction == 0.5
        assert args.canary_margin == 0.05
        assert args.oversample == 2
        assert args.no_promote

    def test_retrain_requires_registry_and_outcomes(self, parser):
        with pytest.raises(SystemExit):
            parser.parse_args(["retrain", "--registry", "reg"])
        with pytest.raises(SystemExit):
            parser.parse_args(["retrain", "--outcomes", "o.jsonl"])
