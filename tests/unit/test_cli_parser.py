"""Unit tests for the CLI argument parser (no workflows executed)."""

import pytest

from repro.cli import build_parser


@pytest.fixture(scope="module")
def parser():
    return build_parser()


class TestParser:
    def test_train_defaults(self, parser):
        args = parser.parse_args(["train", "a.npy", "b.npy", "--model", "m.npz"])
        assert args.inputs == ["a.npy", "b.npy"]
        assert args.compressor == "sz"
        assert args.stride == 4
        assert args.stationary_points == 25
        assert not args.no_adjustment

    def test_train_overrides(self, parser):
        args = parser.parse_args(
            [
                "train", "a.npy", "--model", "m.npz", "--compressor", "zfp",
                "--stride", "2", "--no-adjustment",
            ]
        )
        assert args.compressor == "zfp"
        assert args.stride == 2
        assert args.no_adjustment

    def test_unknown_compressor_rejected(self, parser):
        with pytest.raises(SystemExit):
            parser.parse_args(
                ["train", "a.npy", "--model", "m.npz", "--compressor", "lz4"]
            )

    def test_estimate_requires_ratio(self, parser):
        with pytest.raises(SystemExit):
            parser.parse_args(["estimate", "a.npy", "--model", "m.npz"])

    def test_compress_round_trip_args(self, parser):
        args = parser.parse_args(
            ["compress", "a.npy", "--model", "m.npz", "--ratio", "12.5",
             "--output", "a.fxrz"]
        )
        assert args.ratio == 12.5
        assert args.output == "a.fxrz"

    def test_search_defaults(self, parser):
        args = parser.parse_args(["search", "a.npy", "--ratio", "8"])
        assert args.iterations == 15
        assert args.compressor == "sz"

    def test_export_args(self, parser):
        args = parser.parse_args(["export", "nyx-1", "temperature", "--out", "d"])
        assert args.dataset == "nyx-1"
        assert args.field == "temperature"

    def test_command_required(self, parser):
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_all_compressors_offered(self, parser):
        for name in ("sz", "sz2", "zfp", "fpzip", "mgard", "digit"):
            args = parser.parse_args(
                ["search", "a.npy", "--ratio", "5", "--compressor", name]
            )
            assert args.compressor == name
