"""Unit tests for repro.encoding.bitio."""

import numpy as np
import pytest

from repro.encoding.bitio import (
    BitReader,
    BitWriter,
    _pack_bits_reference,
    pack_at_offsets,
    pack_bits,
    pack_fixed_width,
    unpack_bits,
    unpack_fixed_width,
)
from repro.errors import CorruptStreamError


class TestBitWriterReader:
    def test_roundtrip_mixed_widths(self):
        writer = BitWriter()
        writer.write_bits(5, 3)
        writer.write_bits(1, 1)
        writer.write_bits(1023, 10)
        writer.write_bit(1)
        data = writer.getvalue()
        reader = BitReader(data)
        assert reader.read_bits(3) == 5
        assert reader.read_bits(1) == 1
        assert reader.read_bits(10) == 1023
        assert reader.read_bit() == 1

    def test_empty_stream(self):
        assert BitWriter().getvalue() == b""

    def test_value_too_wide_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_bits(8, 3)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(-1, 4)

    def test_read_past_end_raises(self):
        writer = BitWriter()
        writer.write_bits(3, 2)
        reader = BitReader(writer.getvalue())
        reader.read_bits(2)
        # Padding bits exist up to the byte boundary; exhaust them.
        reader.read_bits(6)
        with pytest.raises(CorruptStreamError):
            reader.read_bit()

    def test_zero_width_read(self):
        reader = BitReader(b"\xff")
        assert reader.read_bits(0) == 0

    def test_remaining_counts_down(self):
        reader = BitReader(b"\xab")
        assert reader.remaining == 8
        reader.read_bits(3)
        assert reader.remaining == 5


class TestPackBits:
    def test_roundtrip_variable_lengths(self):
        codes = np.array([0b1, 0b01, 0b111, 0b0001], dtype=np.uint64)
        lengths = np.array([1, 2, 3, 4], dtype=np.int64)
        buf, total = pack_bits(codes, lengths)
        assert total == 10
        bits = unpack_bits(buf, total)
        expected = [1, 0, 1, 1, 1, 1, 0, 0, 0, 1]
        assert bits.tolist() == expected

    def test_empty(self):
        buf, total = pack_bits(np.zeros(0, np.uint64), np.zeros(0, np.int64))
        assert buf == b"" and total == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pack_bits(np.zeros(3, np.uint64), np.zeros(2, np.int64))

    def test_unpack_truncated_buffer_raises(self):
        with pytest.raises(CorruptStreamError):
            unpack_bits(b"\x00", 9)


class TestPackAtOffsets:
    def test_matches_bit_by_bit_reference(self, rng):
        # The word-scatter packer must be byte-identical to the slow
        # reference across many random code/length mixes.
        for _ in range(25):
            n = int(rng.integers(1, 400))
            lengths = rng.integers(1, 23, n)
            codes = rng.integers(0, 1 << 22, n, dtype=np.uint64) & (
                (np.uint64(1) << lengths.astype(np.uint64)) - np.uint64(1)
            )
            fast, total_fast = pack_bits(codes, lengths)
            slow, total_slow = _pack_bits_reference(codes, lengths)
            assert total_fast == total_slow
            assert fast == slow

    def test_stray_high_bits_are_masked(self):
        # Raw table lookups may carry bits above the declared length;
        # they must not leak into neighboring codes.
        codes = np.array([0b111111, 0b1], dtype=np.uint64)
        lengths = np.array([2, 1], dtype=np.int64)
        buf, total = pack_bits(codes, lengths)
        assert total == 3
        assert unpack_bits(buf, 3).tolist() == [1, 1, 1]

    def test_gaps_are_zero_filled(self):
        # Chunk padding: codes at explicit offsets with a hole between.
        codes = np.array([0b11, 0b11], dtype=np.uint64)
        lengths = np.array([2, 2], dtype=np.int64)
        offsets = np.array([0, 8], dtype=np.int64)
        buf = pack_at_offsets(codes, lengths, offsets, 10)
        bits = unpack_bits(buf, 10)
        assert bits.tolist() == [1, 1, 0, 0, 0, 0, 0, 0, 1, 1]

    def test_word_straddling_codes(self):
        # A 20-bit code crossing the 64-bit word boundary.
        codes = np.array([(1 << 60) - 1, (1 << 20) - 1], dtype=np.uint64)
        lengths = np.array([60, 20], dtype=np.int64)
        fast, total = pack_bits(codes, lengths)
        slow, _ = _pack_bits_reference(codes, lengths)
        assert fast == slow
        assert total == 80

    def test_empty(self):
        assert pack_at_offsets(
            np.zeros(0, np.uint64),
            np.zeros(0, np.int64),
            np.zeros(0, np.int64),
            0,
        ) == b""


class TestFixedWidth:
    def test_roundtrip(self):
        values = np.array([0, 1, 5, 1000, 4095], dtype=np.uint64)
        buf = pack_fixed_width(values, 12)
        out = unpack_fixed_width(buf, 12, values.size)
        assert np.array_equal(out, values)

    def test_width_zero(self):
        assert pack_fixed_width(np.array([0, 0], np.uint64), 0) == b""
        out = unpack_fixed_width(b"", 0, 5)
        assert np.array_equal(out, np.zeros(5, np.uint64))

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            pack_fixed_width(np.array([16], np.uint64), 4)

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            pack_fixed_width(np.array([1], np.uint64), 65)

    def test_truncated_payload_raises(self):
        with pytest.raises(CorruptStreamError):
            unpack_fixed_width(b"\x00", 12, 10)

    def test_max_width_64(self):
        values = np.array([2**63 + 12345], dtype=np.uint64)
        buf = pack_fixed_width(values, 64)
        assert np.array_equal(unpack_fixed_width(buf, 64, 1), values)
