"""Unit tests for distortion metrics, halo analysis and variability."""

import numpy as np
import pytest

from repro.analysis.distortion import (
    max_abs_error,
    normalized_rmse,
    psnr,
    valid_ratio_range,
)
from repro.analysis.halos import find_halos, halo_mislocation_fraction
from repro.analysis.variability import series_variability, snapshot_statistics
from repro.compressors import get_compressor
from repro.datasets.base import FieldSeries
from repro.errors import InvalidConfiguration


class TestDistortion:
    def test_exact_match(self, rng):
        data = rng.standard_normal((10, 10))
        assert max_abs_error(data, data) == 0.0
        assert normalized_rmse(data, data) == 0.0
        assert psnr(data, data) == float("inf")

    def test_known_values(self):
        a = np.array([0.0, 1.0])
        b = np.array([0.5, 1.0])
        assert max_abs_error(a, b) == 0.5
        assert normalized_rmse(a, b) == pytest.approx(np.sqrt(0.125))

    def test_psnr_decreases_with_noise(self, rng):
        data = rng.standard_normal((32, 32))
        small = data + 1e-4 * rng.standard_normal((32, 32))
        large = data + 1e-1 * rng.standard_normal((32, 32))
        assert psnr(data, small) > psnr(data, large)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(InvalidConfiguration):
            max_abs_error(np.zeros(3), np.zeros(4))

    def test_valid_ratio_range(self, smooth_field3d):
        comp = get_compressor("sz")
        lo, hi = valid_ratio_range(comp, smooth_field3d, min_psnr=40.0, n_probes=8)
        assert 0 < lo < hi
        # The top of the range must indeed deliver >= 40 dB somewhere.
        assert hi > 2.0

    def test_stricter_floor_shrinks_range(self, smooth_field3d):
        comp = get_compressor("sz")
        _, hi_loose = valid_ratio_range(comp, smooth_field3d, min_psnr=30.0)
        _, hi_strict = valid_ratio_range(comp, smooth_field3d, min_psnr=60.0)
        assert hi_strict <= hi_loose

    def test_impossible_floor_rejected(self, rng):
        comp = get_compressor("sz")
        noise = rng.standard_normal((16, 16, 16))
        with pytest.raises(InvalidConfiguration):
            valid_ratio_range(comp, noise, min_psnr=500.0)


def _density_with_halos(seed=0):
    rng = np.random.default_rng(seed)
    density = np.abs(rng.standard_normal((32, 32, 32))) * 0.1 + 1.0
    centers = [(8, 8, 8), (24, 24, 24), (8, 24, 16), (20, 6, 28)]
    for cx, cy, cz in centers:
        density[cx - 1 : cx + 2, cy - 1 : cy + 2, cz - 1 : cz + 2] = 20.0
    return density, centers


class TestHalos:
    def test_finds_planted_halos(self):
        density, centers = _density_with_halos()
        halos = find_halos(density, overdensity=5.0)
        assert len(halos) == len(centers)
        found = {tuple(round(c) for c in h.centroid) for h in halos}
        assert found == set(centers)

    def test_min_cells_filters_specks(self):
        density, _ = _density_with_halos()
        density[0, 0, 0] = 50.0  # single-cell spike
        with_specks = find_halos(density, overdensity=5.0, min_cells=1)
        without = find_halos(density, overdensity=5.0, min_cells=2)
        assert len(with_specks) == len(without) + 1

    def test_identical_reconstruction_no_mislocation(self):
        density, _ = _density_with_halos()
        assert halo_mislocation_fraction(density, density.copy()) == 0.0

    def test_destroyed_halos_fully_mislocated(self):
        density, _ = _density_with_halos()
        flat = np.full_like(density, density.mean())
        assert halo_mislocation_fraction(density, flat) == 1.0

    def test_mislocation_grows_with_error_bound(self):
        """The Sec. V-C mechanism: larger eb -> more mislocated halos."""
        density, _ = _density_with_halos()
        comp = get_compressor("sz")
        fractions = []
        for eb in (0.01, 2.0):
            recon, _ = comp.roundtrip(density, eb)
            fractions.append(
                halo_mislocation_fraction(density, recon, overdensity=5.0)
            )
        assert fractions[0] <= fractions[1]

    def test_no_halos_rejected(self):
        with pytest.raises(InvalidConfiguration):
            halo_mislocation_fraction(np.ones((8, 8, 8)), np.ones((8, 8, 8)))


class TestVariability:
    def _series(self, offset, label):
        series = FieldSeries("app", "f")
        rng = np.random.default_rng(17)
        for i in range(3):
            series.add(f"{label}{i}", offset + rng.standard_normal((16, 16)))
        return series

    def test_identical_series_zero_distance(self):
        a = self._series(0.0, "a")
        stats = series_variability(a, a)
        assert stats["histogram_l1"] == pytest.approx(0.0)
        assert stats["std_ratio"] == pytest.approx(1.0)
        assert stats["mean_shift"] == pytest.approx(0.0)

    def test_shifted_series_detected(self):
        stats = series_variability(self._series(0.0, "a"), self._series(5.0, "b"))
        assert stats["mean_shift"] > 3.0
        assert stats["histogram_l1"] > 0.5

    def test_snapshot_statistics_fields(self):
        stats = snapshot_statistics(self._series(1.0, "a"))
        assert len(stats) == 3
        assert stats[0].mean == pytest.approx(1.0, abs=0.2)
        assert stats[0].std > 0

    def test_empty_series_rejected(self):
        empty = FieldSeries("app", "f")
        with pytest.raises(InvalidConfiguration):
            series_variability(empty, empty)
