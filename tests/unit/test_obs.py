"""Observability unit tests: tracer, registry, recorder, report.

Covers the span tree mechanics (nesting, attributes, error status,
explicit parenting, thread safety, absorb/export round-trip), the
metrics registry (counters/gauges/histograms, labels, name validation,
pull-model collectors, Prometheus rendering), the serving recorder's
migration onto the registry plus the no-data-percentile fix, the
profiled() hook, and the cost-tree report."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro import obs
from repro.errors import InvalidConfiguration
from repro.serving.metrics import MetricsRecorder

pytestmark = pytest.mark.obs


@pytest.fixture()
def tracer():
    with obs.session() as (tracer, _registry):
        yield tracer


@pytest.fixture()
def registry():
    with obs.session() as (_tracer, registry):
        yield registry


class TestSpans:
    def test_nesting_builds_a_tree(self, tracer):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        outer = next(s for s in tracer.spans if s.name == "outer")
        inner = next(s for s in tracer.spans if s.name == "inner")
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id
        assert outer.parent_id is None

    def test_attributes_and_timing(self, tracer):
        with obs.span("work", flavor="test") as span:
            span.set_attribute("answer", 42)
            span.set_attributes(more=1.5, text="x")
        [span] = tracer.spans
        assert span.attributes == {
            "flavor": "test", "answer": 42, "more": 1.5, "text": "x",
        }
        assert span.wall_seconds >= 0.0
        assert span.cpu_seconds >= 0.0
        assert span.status == "ok"

    def test_exception_marks_error_and_propagates(self, tracer):
        with pytest.raises(ValueError, match="boom"):
            with obs.span("failing"):
                raise ValueError("boom")
        [span] = tracer.spans
        assert span.status == "error"
        assert span.error == "ValueError: boom"

    def test_sibling_spans_share_parent(self, tracer):
        with obs.span("parent"):
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
        parent = next(s for s in tracer.spans if s.name == "parent")
        children = [s for s in tracer.spans if s.name in ("a", "b")]
        assert all(c.parent_id == parent.span_id for c in children)

    def test_explicit_parent_and_forced_root(self, tracer):
        with obs.span("root") as root:
            ctx = obs.current_context()
        with tracer.span("adopted", parent=ctx):
            pass
        with tracer.span("orphan", parent=None):
            pass
        adopted = next(s for s in tracer.spans if s.name == "adopted")
        orphan = next(s for s in tracer.spans if s.name == "orphan")
        assert adopted.parent_id == root.span_id
        assert orphan.parent_id is None
        assert orphan.trace_id != root.trace_id

    def test_attach_detach_propagates_to_thread(self, tracer):
        with obs.span("driver"):
            ctx = obs.current_context()

        def worker():
            token = obs.attach(ctx)
            try:
                with obs.span("threaded"):
                    pass
            finally:
                obs.detach(token)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        driver = next(s for s in tracer.spans if s.name == "driver")
        threaded = next(s for s in tracer.spans if s.name == "threaded")
        assert threaded.parent_id == driver.span_id

    def test_concurrent_spans_all_collected(self, tracer):
        def worker(i):
            for _ in range(50):
                with obs.span(f"t{i}"):
                    pass

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer) == 200

    def test_export_jsonl_round_trip(self, tracer, tmp_path):
        with obs.span("outer", n=np.int64(3)):
            with obs.span("inner"):
                pass
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(path) == 2
        spans = obs.load_trace(path)
        assert {s.name for s in spans} == {"outer", "inner"}
        assert obs.tree_shape(spans) == obs.tree_shape(tracer.spans)
        # numpy attribute values must have been JSON-sanitized
        outer = next(s for s in spans if s.name == "outer")
        assert outer.attributes["n"] == 3

    def test_drain_and_absorb(self, tracer):
        worker = obs.Tracer()
        with worker.span("shipped"):
            pass
        payloads = [s.to_dict() for s in worker.drain()]
        assert worker.spans == []
        tracer.absorb(payloads)
        assert [s.name for s in tracer.spans] == ["shipped"]

    def test_disabled_path_is_nullspan(self):
        assert obs.get_tracer() is None
        span_cm = obs.span("anything")
        assert span_cm is obs.NULL_SPAN
        with span_cm as span:
            span.set_attribute("ignored", 1)
            span.set_attributes(also="ignored")


class TestRegistry:
    def test_counter_labels_and_values(self, registry):
        c = registry.counter("repro_test_total", "help text")
        c.inc()
        c.inc(2, kind="x")
        assert c.value() == 1.0
        assert c.value(kind="x") == 2.0
        with pytest.raises(InvalidConfiguration):
            c.inc(-1)

    def test_gauge_last_write_wins(self, registry):
        g = registry.gauge("repro_test_level")
        g.set(3.0)
        g.set(5.0)
        assert g.value() == 5.0

    def test_histogram_buckets_sum_count(self, registry):
        h = registry.histogram(
            "repro_test_seconds", buckets=(0.1, 1.0, 10.0)
        )
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["counts"] == [1, 2, 1]  # 50.0 overflows every bucket
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(56.05)

    def test_name_validation(self, registry):
        for bad in ("latency", "repro_Upper", "repro-test", "repro_"):
            with pytest.raises(InvalidConfiguration):
                registry.counter(bad)

    def test_get_or_create_and_kind_mismatch(self, registry):
        first = registry.counter("repro_test_total")
        assert registry.counter("repro_test_total") is first
        with pytest.raises(InvalidConfiguration):
            registry.gauge("repro_test_total")
        registry.histogram("repro_test_hist", buckets=(1.0, 2.0))
        with pytest.raises(InvalidConfiguration):
            registry.histogram("repro_test_hist", buckets=(1.0, 3.0))

    def test_collector_runs_at_export(self, registry):
        state = {"n": 0}
        gauge = registry.gauge("repro_test_entries")
        registry.register_collector(lambda: gauge.set(state["n"]))
        state["n"] = 7
        assert "repro_test_entries 7" in registry.render_prometheus()

    def test_bind_cache_gauges(self, registry):
        class FakeCache:
            hits, misses, evictions = 3, 2, 1

            def __len__(self):
                return 4

        obs.bind_cache_gauges(registry, "fake", FakeCache())
        text = registry.render_prometheus()
        for line in (
            "repro_fake_hits 3",
            "repro_fake_misses 2",
            "repro_fake_evictions 1",
            "repro_fake_entries 4",
        ):
            assert line in text

    def test_prometheus_histogram_exposition(self, registry):
        h = registry.histogram("repro_test_seconds", buckets=(1.0, 10.0))
        h.observe(0.5, outcome="ok")
        h.observe(5.0, outcome="ok")
        text = registry.render_prometheus()
        assert '# TYPE repro_test_seconds histogram' in text
        assert 'repro_test_seconds_bucket{outcome="ok",le="1"} 1' in text
        assert 'repro_test_seconds_bucket{outcome="ok",le="10"} 2' in text
        assert 'repro_test_seconds_bucket{outcome="ok",le="+Inf"} 2' in text
        assert 'repro_test_seconds_count{outcome="ok"} 2' in text

    def test_to_dict_is_json_serializable(self, registry):
        registry.counter("repro_test_total").inc(tier="model")
        registry.histogram("repro_test_seconds").observe(0.1)
        json.dumps(registry.to_dict())

    def test_label_value_escaping_survives_hostile_strings(self, registry):
        counter = registry.counter(
            "repro_hostile_total", "help with \\ backslash\nand newline"
        )
        counter.inc(path='C:\\data\nid="x"')
        text = registry.render_prometheus()
        # HELP escapes backslash and newline (quotes stay literal).
        assert (
            "# HELP repro_hostile_total "
            "help with \\\\ backslash\\nand newline" in text
        )
        # The label value's backslash, newline and quotes are escaped.
        assert (
            'repro_hostile_total{path="C:\\\\data\\nid=\\"x\\""} 1' in text
        )
        # The raw newline must not have split the series line: every
        # non-comment line still parses as `name{...} value`.
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            assert name and float(value) >= 0


class TestRecorderMigration:
    def test_no_data_percentiles_are_none_not_zero(self):
        recorder = MetricsRecorder()
        snap = recorder.snapshot()
        assert snap.latency_mean_ms is None
        assert snap.latency_p50_ms is None
        assert snap.latency_p95_ms is None
        assert snap.latency_max_ms is None
        assert any("n/a" in line for line in snap.lines())

    def test_only_failures_still_report_no_latency_data(self):
        recorder = MetricsRecorder()
        recorder.record_request(0.5, failed=True)
        snap = recorder.snapshot()
        assert snap.requests_total == 1
        assert snap.requests_failed == 1
        # The failed request's latency must not fabricate percentiles.
        assert snap.latency_count == 0
        assert snap.latency_p95_ms is None

    def test_failures_excluded_from_latency_window(self):
        recorder = MetricsRecorder()
        recorder.record_request(0.001, tier="model")
        recorder.record_request(9.0, failed=True)
        snap = recorder.snapshot()
        assert snap.latency_count == 1
        assert snap.latency_max_ms == pytest.approx(1.0)

    def test_registry_mirror(self):
        with obs.session() as (_tracer, registry):
            recorder = MetricsRecorder()
            recorder.record_batch(2)
            recorder.record_request(0.002, tier="model", analysis_seconds=0.001)
            recorder.record_request(0.004, failed=True)
            requests = registry.get("repro_serving_requests_total")
            assert requests.value(outcome="ok") == 1
            assert requests.value(outcome="error") == 1
            assert registry.get("repro_serving_tier_total").value(tier="model") == 1
            assert registry.get("repro_serving_batches_total").value() == 1
            assert (
                registry.get("repro_serving_batched_requests_total").value() == 2
            )
            latency = registry.get("repro_serving_latency_seconds")
            assert latency.snapshot(outcome="ok")["count"] == 1
            assert latency.snapshot(outcome="error")["count"] == 1
            assert registry.get(
                "repro_serving_analysis_seconds_total"
            ).value() == pytest.approx(0.001)

    def test_no_registry_no_mirror(self):
        assert obs.get_registry() is None
        recorder = MetricsRecorder()
        recorder.record_request(0.001, tier="model")
        assert recorder.snapshot().requests_total == 1


class TestProfiled:
    def test_profiled_attaches_rss_samples(self, tracer):
        with obs.profiled("hot", tag="x") as span:
            blob = bytearray(1 << 20)
            del blob
        [span] = tracer.spans
        assert span.name == "hot"
        assert span.attributes["tag"] == "x"
        assert "rss_before_bytes" in span.attributes
        assert "rss_after_bytes" in span.attributes
        assert "rss_delta_bytes" in span.attributes

    def test_profiled_noop_when_disabled(self):
        assert obs.get_tracer() is None
        with obs.profiled("hot") as span:
            assert span is obs.NULL_SPAN

    def test_profiler_tracing_reports_allocations(self, tracer):
        with obs.Profiler.tracing():
            with obs.profiled("alloc") as span:
                keep = np.zeros(1 << 16)
        assert span.attributes["alloc_after_bytes"] > 0
        assert keep.size == 1 << 16


class TestReport:
    def _spans(self):
        tracer = obs.Tracer()
        with tracer.span("root"):
            for _ in range(3):
                with tracer.span("probe"):
                    pass
        return tracer.spans

    def test_cost_tree_aggregates_same_named_siblings(self):
        root = obs.cost_tree(self._spans())
        assert root["name"] == "total"
        [top] = root["children"]
        assert top["name"] == "root"
        [probes] = top["children"]
        assert probes["name"] == "probe"
        assert probes["count"] == 3
        assert top["self_seconds"] <= top["wall_seconds"]

    def test_render_marks_errors_and_filters(self):
        tracer = obs.Tracer()
        with tracer.span("root"):
            try:
                with tracer.span("bad"):
                    raise RuntimeError("x")
            except RuntimeError:
                pass
        text = obs.render_cost_tree(tracer.spans)
        assert "1 error(s)" in text
        assert "root" in text and "bad" in text
        assert obs.render_cost_tree([]) == "(no spans recorded)"

    def test_orphan_spans_become_roots(self):
        tracer = obs.Tracer()
        with tracer.span("a"):
            pass
        spans = tracer.spans
        spans[0].parent_id = "missing-parent"
        root = obs.cost_tree(spans)
        assert [c["name"] for c in root["children"]] == ["a"]

    def test_tree_shape_is_order_independent(self):
        t1, t2 = obs.Tracer(), obs.Tracer()
        with t1.span("r"):
            with t1.span("a"):
                pass
            with t1.span("b"):
                pass
        with t2.span("r"):
            with t2.span("b"):
                pass
            with t2.span("a"):
                pass
        assert obs.tree_shape(t1.spans) == obs.tree_shape(t2.spans)


class TestSessionScoping:
    def test_session_restores_previous_state(self):
        outer = obs.Tracer()
        obs.install(tracer=outer)
        try:
            with obs.session() as (inner, _):
                assert obs.get_tracer() is inner
            assert obs.get_tracer() is outer
        finally:
            obs.uninstall()

    def test_memo_register_metrics(self):
        from repro.parallel import CompressionMemoCache, MemoRecord

        memo = CompressionMemoCache()
        registry = obs.MetricsRegistry()
        memo.register_metrics(registry)
        key = ("fp", "token", 1.0)
        memo.get(key)
        memo.put(key, MemoRecord(ratio=2.0, seconds=0.1))
        memo.get(key)
        text = registry.render_prometheus()
        assert "repro_memo_hits 1" in text
        assert "repro_memo_misses 1" in text
        assert "repro_memo_entries 1" in text
