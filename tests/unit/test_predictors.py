"""Unit tests for the Lorenzo and interpolation predictors."""

import numpy as np
import pytest

from repro.compressors.predictors import (
    interp_prediction_cubic,
    interp_prediction_linear,
    lorenzo_prediction,
    lorenzo_reconstruct,
    lorenzo_residuals,
)


class TestLorenzo:
    @pytest.mark.parametrize("shape", [(50,), (12, 9), (6, 7, 8), (3, 4, 5, 6)])
    def test_residual_reconstruct_inverse(self, rng, shape):
        data = rng.integers(-1000, 1000, shape).astype(np.int64)
        recon = lorenzo_reconstruct(lorenzo_residuals(data))
        assert np.array_equal(recon, data)

    def test_2d_matches_paper_equation(self, rng):
        # Eq. (1): pred = d[i-1,j] + d[i,j-1] - d[i-1,j-1].
        data = rng.standard_normal((8, 8))
        pred = lorenzo_prediction(data)
        i, j = 4, 5
        expected = data[i - 1, j] + data[i, j - 1] - data[i - 1, j - 1]
        assert pred[i, j] == pytest.approx(expected)

    def test_3d_matches_paper_equation(self, rng):
        # Eq. (2): inclusion-exclusion over the preceding cube corner.
        d = rng.standard_normal((6, 6, 6))
        pred = lorenzo_prediction(d)
        i, j, k = 3, 4, 2
        expected = (
            d[i - 1, j, k]
            + d[i, j - 1, k]
            + d[i, j, k - 1]
            - d[i - 1, j - 1, k]
            - d[i - 1, j, k - 1]
            - d[i, j - 1, k - 1]
            + d[i - 1, j - 1, k - 1]
        )
        assert pred[i, j, k] == pytest.approx(expected)

    def test_constant_field_residual_is_zero_inside(self):
        data = np.full((5, 5), 3.0)
        residuals = lorenzo_residuals(data)
        assert np.allclose(residuals[1:, 1:], 0.0)

    def test_linear_ramp_predicted_exactly_inside(self):
        x, y = np.meshgrid(np.arange(10.0), np.arange(10.0), indexing="ij")
        data = 2 * x + 3 * y
        residuals = lorenzo_residuals(data)
        assert np.allclose(residuals[1:, 1:], 0.0)


class TestInterpolation:
    def test_linear_midpoint_exact_on_linear_data(self):
        recon = np.arange(0.0, 33.0)
        new_idx = np.arange(2, 31, 4)
        pred = interp_prediction_linear(recon, 0, new_idx, 2)
        assert np.allclose(pred, recon[new_idx])

    def test_linear_boundary_falls_back_to_left(self):
        recon = np.arange(0.0, 7.0)
        new_idx = np.array([6])  # right neighbor at 8 out of range
        pred = interp_prediction_linear(recon, 0, new_idx, 2)
        assert pred[0] == recon[4]

    def test_cubic_exact_on_cubic_polynomial(self):
        # Eq. (3) reproduces cubics exactly at midpoints.
        t = np.arange(0.0, 64.0)
        recon = 0.5 * t**3 - 2 * t**2 + t - 7
        # Keep i +- 3h in range so no point falls back to linear.
        new_idx = np.arange(16, 48, 8)
        pred = interp_prediction_cubic(recon, 0, new_idx, 4)
        assert np.allclose(pred, recon[new_idx], rtol=1e-10)

    def test_cubic_falls_back_to_linear_near_edges(self):
        recon = np.arange(0.0, 12.0)
        new_idx = np.array([2])  # i-3h = -4 out of range
        cubic = interp_prediction_cubic(recon, 0, new_idx, 2)
        linear = interp_prediction_linear(recon, 0, new_idx, 2)
        assert np.allclose(cubic, linear)

    def test_multi_axis_prediction(self, rng):
        recon = rng.standard_normal((16, 17))
        new_idx = np.array([4, 12])
        pred = interp_prediction_linear(recon, 1, new_idx, 4)
        assert pred[3, 0] == pytest.approx(0.5 * (recon[3, 0] + recon[3, 8]))
        assert pred[5, 1] == pytest.approx(0.5 * (recon[5, 8] + recon[5, 16]))

    def test_prediction_shape(self, rng):
        recon = rng.standard_normal((8, 20, 8))
        new_idx = np.array([2, 6, 10, 14, 18])
        pred = interp_prediction_linear(recon, 1, new_idx, 2)
        assert pred.shape == (8, 5, 8)
