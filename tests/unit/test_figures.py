"""Unit tests for the ASCII figure helpers."""

import numpy as np
import pytest

from repro.errors import InvalidConfiguration
from repro.experiments.figures import ascii_plot, sparkline


class TestSparkline:
    def test_width_respected(self):
        line = sparkline(np.arange(10.0), width=30)
        assert len(line) == 30

    def test_monotone_series_monotone_chars(self):
        line = sparkline(np.arange(48.0), width=48)
        order = {ch: i for i, ch in enumerate(" .:-=+*#%@")}
        levels = [order[c] for c in line]
        assert levels == sorted(levels)

    def test_constant_series(self):
        line = sparkline(np.full(10, 3.0), width=10)
        assert len(set(line)) == 1

    def test_empty_rejected(self):
        with pytest.raises(InvalidConfiguration):
            sparkline(np.zeros(0))

    def test_bad_width_rejected(self):
        with pytest.raises(InvalidConfiguration):
            sparkline(np.arange(5.0), width=0)


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        x = np.linspace(0, 1, 20)
        plot = ascii_plot(x, {"target": x, "measured": x**2})
        assert "t=target" in plot and "m=measured" in plot
        assert "t" in plot.splitlines()[0] + plot.splitlines()[5]

    def test_grid_dimensions(self):
        x = np.linspace(0, 1, 10)
        plot = ascii_plot(x, {"a": x}, height=8, width=40)
        lines = plot.splitlines()
        assert len(lines) == 8 + 2  # grid + axis + legend
        assert all(len(line) == 41 for line in lines[:8])  # "|" + width

    def test_logy(self):
        x = np.linspace(1, 10, 10)
        plot = ascii_plot(x, {"a": 10.0**x}, logy=True)
        assert "log10(y)" in plot

    def test_logy_rejects_nonpositive(self):
        x = np.arange(3.0)
        with pytest.raises(InvalidConfiguration):
            ascii_plot(x, {"a": np.array([1.0, 0.0, 2.0])}, logy=True)

    def test_length_mismatch_rejected(self):
        with pytest.raises(InvalidConfiguration):
            ascii_plot(np.arange(3.0), {"a": np.arange(4.0)})

    def test_empty_series_rejected(self):
        with pytest.raises(InvalidConfiguration):
            ascii_plot(np.arange(3.0), {})
