"""Unit tests for the linear-scaling quantizer."""

import numpy as np
import pytest

from repro.compressors.quantizer import LinearQuantizer
from repro.errors import InvalidConfiguration


class TestQuantize:
    def test_error_within_bound(self, rng):
        quantizer = LinearQuantizer(0.01)
        residuals = rng.uniform(-5, 5, 10_000)
        result = quantizer.quantize(residuals)
        err = np.abs(residuals - result.dequantized)
        assert err[~result.outlier_mask].max() <= 0.01 + 1e-12
        assert not result.outlier_mask.any()

    def test_zero_residuals_give_zero_codes(self):
        result = LinearQuantizer(0.1).quantize(np.zeros(100))
        assert (result.codes == 0).all()

    def test_outlier_detection(self):
        quantizer = LinearQuantizer(1e-9, max_code=100)
        result = quantizer.quantize(np.array([0.0, 1.0]))
        assert result.outlier_mask.tolist() == [False, True]
        assert result.codes[1] == quantizer.sentinel
        assert result.dequantized[1] == 0.0

    def test_dequantize_matches_quantize(self, rng):
        quantizer = LinearQuantizer(0.05)
        residuals = rng.uniform(-2, 2, 1000)
        q = quantizer.quantize(residuals)
        deq, mask = quantizer.dequantize(q.codes)
        assert np.array_equal(mask, q.outlier_mask)
        assert np.allclose(deq, q.dequantized)

    def test_bin_width_is_twice_bound(self):
        assert LinearQuantizer(0.25).bin_width == 0.5

    def test_rejects_bad_bound(self):
        with pytest.raises(InvalidConfiguration):
            LinearQuantizer(0.0)
        with pytest.raises(InvalidConfiguration):
            LinearQuantizer(-1.0)
        with pytest.raises(InvalidConfiguration):
            LinearQuantizer(float("nan"))

    def test_rejects_bad_max_code(self):
        with pytest.raises(InvalidConfiguration):
            LinearQuantizer(0.1, max_code=0)

    def test_huge_values_do_not_overflow(self):
        quantizer = LinearQuantizer(1e-300, max_code=1 << 20)
        result = quantizer.quantize(np.array([1e300, -1e300]))
        assert result.outlier_mask.all()

    def test_codes_are_nearest_bin(self):
        quantizer = LinearQuantizer(0.5)  # bin width 1.0
        result = quantizer.quantize(np.array([0.49, 0.51, -0.51, 1.49]))
        assert result.codes.tolist() == [0, 1, -1, 1]
