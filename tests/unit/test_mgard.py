"""Unit tests for the MGARD-like multigrid compressor."""

import numpy as np
import pytest

from repro.compressors.mgard import MGARDCompressor, _level_bins
from repro.compressors.sz import SZCompressor


class TestLevelBins:
    def test_single_level(self):
        assert _level_bins(0.1, 1) == [0.1]

    def test_bins_never_exceed_bound(self):
        bins = _level_bins(0.5, 8)
        assert all(b <= 0.5 + 1e-15 for b in bins)

    def test_bins_shrink_with_depth(self):
        bins = _level_bins(1.0, 6)
        assert bins == sorted(bins, reverse=True)


class TestRoundtrip:
    @pytest.mark.parametrize("eb", [1e-3, 1e-2, 1e-1])
    def test_error_bound_respected(self, smooth_field3d, eb):
        comp = MGARDCompressor()
        recon, blob = comp.roundtrip(smooth_field3d, eb)
        comp.verify(smooth_field3d, recon, blob.config)

    @pytest.mark.parametrize("shape", [(11,), (7, 13), (9, 6, 5), (3, 4, 5, 6)])
    def test_odd_shapes(self, rng, shape):
        comp = MGARDCompressor()
        data = rng.standard_normal(shape).cumsum(axis=-1)
        recon, blob = comp.roundtrip(data, 0.05)
        comp.verify(data, recon, blob.config)

    def test_rough_data_with_outliers(self, rough_field3d):
        comp = MGARDCompressor()
        recon, blob = comp.roundtrip(rough_field3d, 1e-4)
        comp.verify(rough_field3d, recon, blob.config)

    def test_ratio_grows_with_bound(self, smooth_field3d):
        comp = MGARDCompressor()
        ratios = [
            comp.compression_ratio(smooth_field3d, eb)
            for eb in (1e-4, 1e-3, 1e-2, 1e-1)
        ]
        assert ratios == sorted(ratios)

    def test_distinct_curve_from_sz(self, smooth_field3d):
        """MGARD's level-scaled bins give a different CR-eb tradeoff."""
        mgard = MGARDCompressor()
        sz = SZCompressor()
        bounds = np.logspace(-4, -1, 6)
        mgard_ratios = np.array(
            [mgard.compression_ratio(smooth_field3d, b) for b in bounds]
        )
        sz_ratios = np.array(
            [sz.compression_ratio(smooth_field3d, b) for b in bounds]
        )
        rel = np.abs(mgard_ratios - sz_ratios) / sz_ratios
        assert rel.max() > 0.10, "curves should not coincide"

    def test_constant_field(self):
        comp = MGARDCompressor()
        data = np.full((12, 12), -3.5)
        recon, blob = comp.roundtrip(data, 0.01)
        assert np.max(np.abs(recon - data)) <= 0.01

    def test_actual_error_tighter_than_bound(self, smooth_field3d):
        """Level-scaled bins over-deliver: achieved error < bound."""
        comp = MGARDCompressor()
        recon, _ = comp.roundtrip(smooth_field3d, 0.1)
        err = np.max(np.abs(smooth_field3d.astype(np.float64) - recon))
        assert err < 0.1
