"""Unit tests for the classic Lorenzo (sz2) compressor."""

import numpy as np
import pytest

from repro.compressors import get_compressor
from repro.compressors.sz import SZCompressor
from repro.compressors.sz_lorenzo import SZLorenzoCompressor, _wavefronts


class TestWavefronts:
    @pytest.mark.parametrize("shape", [(7,), (4, 5), (3, 4, 5)])
    def test_order_is_a_permutation(self, shape):
        order, starts = _wavefronts(shape)
        assert sorted(order.tolist()) == list(range(int(np.prod(shape))))
        assert starts[0] == 0 and starts[-1] == order.size

    def test_wavefronts_respect_dependencies(self):
        """Every point's Lorenzo neighbors lie on earlier wavefronts."""
        shape = (4, 5)
        order, starts = _wavefronts(shape)
        wavefront_of = np.empty(shape, dtype=int)
        for s in range(starts.size - 1):
            for flat in order[starts[s] : starts[s + 1]]:
                wavefront_of[np.unravel_index(flat, shape)] = s
        for i in range(1, 4):
            for j in range(1, 5):
                assert wavefront_of[i - 1, j] < wavefront_of[i, j]
                assert wavefront_of[i, j - 1] < wavefront_of[i, j]
                assert wavefront_of[i - 1, j - 1] < wavefront_of[i, j]


class TestRoundtrip:
    def test_registered(self):
        assert isinstance(get_compressor("sz2"), SZLorenzoCompressor)

    @pytest.mark.parametrize("eb", [1e-3, 1e-2, 1e-1])
    def test_error_bound_respected(self, smooth_field3d, eb):
        comp = get_compressor("sz2")
        recon, blob = comp.roundtrip(smooth_field3d, eb)
        comp.verify(smooth_field3d, recon, blob.config)

    @pytest.mark.parametrize(
        "shape", [(1,), (17,), (5, 3), (13, 21, 7), (4, 5, 6, 7)]
    )
    def test_odd_shapes(self, rng, shape):
        comp = get_compressor("sz2")
        data = rng.standard_normal(shape).cumsum(axis=-1)
        recon, blob = comp.roundtrip(data, 0.05)
        comp.verify(data, recon, blob.config)

    def test_rough_data_with_outliers(self, rough_field3d):
        comp = get_compressor("sz2")
        recon, blob = comp.roundtrip(rough_field3d, 1e-4)
        comp.verify(rough_field3d, recon, blob.config)

    def test_linear_ramp_compresses_perfectly(self):
        """Lorenzo predicts affine data exactly: all codes vanish."""
        x, y = np.meshgrid(np.arange(32.0), np.arange(32.0), indexing="ij")
        data = 2 * x + 3 * y + 1
        comp = get_compressor("sz2")
        blob = comp.compress(data, 0.01)
        assert blob.compression_ratio > 40

    def test_ratio_grows_with_bound(self, smooth_field3d):
        comp = get_compressor("sz2")
        ratios = [
            comp.compression_ratio(smooth_field3d, eb)
            for eb in (1e-4, 1e-3, 1e-2, 1e-1)
        ]
        assert ratios == sorted(ratios)

    def test_interpolation_beats_lorenzo_on_smooth_data(self, smooth_field3d):
        """The SZ3-vs-SZ2 story: interpolation wins on smooth fields."""
        sz3 = SZCompressor().compression_ratio(smooth_field3d, 1e-2)
        sz2 = get_compressor("sz2").compression_ratio(smooth_field3d, 1e-2)
        assert sz3 > sz2

    def test_deterministic(self, smooth_field3d):
        comp = get_compressor("sz2")
        assert (
            comp.compress(smooth_field3d, 0.01).data
            == comp.compress(smooth_field3d, 0.01).data
        )
