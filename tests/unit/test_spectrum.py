"""Unit tests for the power-spectrum analysis."""

import numpy as np
import pytest

from repro.analysis.spectrum import isotropic_power_spectrum, spectrum_distortion
from repro.compressors import get_compressor
from repro.datasets.grf import power_spectrum_noise
from repro.errors import InvalidConfiguration


class TestPowerSpectrum:
    def test_single_mode_peaks_in_right_bin(self):
        n = 64
        x = np.arange(n)
        field = np.sin(2 * np.pi * 8 * x / n)  # wavenumber k = 8
        centers, power = isotropic_power_spectrum(field, n_bins=16)
        peak_bin = int(np.argmax(power))
        assert abs(centers[peak_bin] - 8) < centers[1] - centers[0] + 1e-9

    def test_power_law_slope_recovered(self):
        field = power_spectrum_noise((64, 64), alpha=3.0, seed=5)
        centers, power = isotropic_power_spectrum(field, n_bins=16)
        usable = power > 0
        slope = np.polyfit(np.log(centers[usable]), np.log(power[usable]), 1)[0]
        assert -4.0 < slope < -2.0  # near the injected -3

    def test_mean_removed(self):
        field = np.full((32, 32), 7.0)
        _, power = isotropic_power_spectrum(field, n_bins=8)
        assert np.allclose(power, 0.0)

    def test_bad_bins_rejected(self):
        with pytest.raises(InvalidConfiguration):
            isotropic_power_spectrum(np.zeros((8, 8)), n_bins=1)


class TestSpectrumDistortion:
    def test_identical_fields_zero(self):
        field = power_spectrum_noise((32, 32, 32), 3.0, seed=1)
        assert spectrum_distortion(field, field.copy()) == pytest.approx(0.0)

    def test_grows_with_error_bound(self):
        field = power_spectrum_noise((32, 32, 32), 3.0, seed=2)
        comp = get_compressor("sz")
        spread = float(np.ptp(field))
        small_eb, _ = comp.roundtrip(field, 1e-4 * spread)
        large_eb, _ = comp.roundtrip(field, 5e-2 * spread)
        d_small = spectrum_distortion(field, small_eb)
        d_large = spectrum_distortion(field, large_eb)
        assert d_small < d_large

    def test_small_bound_preserves_spectrum(self):
        field = power_spectrum_noise((32, 32, 32), 3.0, seed=3)
        comp = get_compressor("sz")
        recon, _ = comp.roundtrip(field, 1e-5 * float(np.ptp(field)))
        assert spectrum_distortion(field, recon) < 0.05

    def test_shape_mismatch_rejected(self):
        with pytest.raises(InvalidConfiguration):
            spectrum_distortion(np.zeros((8, 8)), np.zeros((8, 9)))

    def test_bad_cut_rejected(self):
        field = np.random.default_rng(0).standard_normal((16, 16))
        with pytest.raises(InvalidConfiguration):
            spectrum_distortion(field, field, k_cut_fraction=0.0)
