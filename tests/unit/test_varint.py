"""Unit tests for repro.encoding.varint."""

import numpy as np
import pytest

from repro.encoding.varint import (
    decode_array_header,
    decode_section,
    decode_uvarint,
    encode_array_header,
    encode_section,
    encode_uvarint,
)
from repro.errors import CorruptStreamError


class TestUvarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**32, 2**62])
    def test_roundtrip(self, value):
        data = encode_uvarint(value)
        decoded, offset = decode_uvarint(data)
        assert decoded == value
        assert offset == len(data)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_uvarint(-1)

    def test_truncated_raises(self):
        with pytest.raises(CorruptStreamError):
            decode_uvarint(b"\x80")

    def test_overlong_raises(self):
        with pytest.raises(CorruptStreamError):
            decode_uvarint(b"\x80" * 10 + b"\x01")

    def test_sequential_decode(self):
        data = encode_uvarint(7) + encode_uvarint(300)
        first, offset = decode_uvarint(data)
        second, offset = decode_uvarint(data, offset)
        assert (first, second) == (7, 300)


class TestArrayHeader:
    @pytest.mark.parametrize(
        "shape,dtype",
        [((3,), np.float32), ((4, 5), np.int64), ((2, 3, 4, 5), np.uint8)],
    )
    def test_roundtrip(self, shape, dtype):
        data = encode_array_header(shape, np.dtype(dtype))
        out_shape, out_dtype, offset = decode_array_header(data)
        assert out_shape == shape
        assert out_dtype == np.dtype(dtype)
        assert offset == len(data)

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ValueError):
            encode_array_header((2,), np.dtype(np.complex128))

    def test_bad_tag_raises(self):
        with pytest.raises(CorruptStreamError):
            decode_array_header(encode_uvarint(250))


class TestSections:
    def test_roundtrip(self):
        blob = encode_section(b"hello") + encode_section(b"")
        first, offset = decode_section(blob)
        second, offset = decode_section(blob, offset)
        assert first == b"hello"
        assert second == b""
        assert offset == len(blob)

    def test_truncated_section_raises(self):
        with pytest.raises(CorruptStreamError):
            decode_section(encode_uvarint(10) + b"abc")
