"""Unit tests for the dataset registry (Table V analogue)."""

import numpy as np
import pytest

from repro.datasets.registry import (
    APPLICATIONS,
    HURRICANE_TEST_STEP,
    dataset_catalog,
    load_series,
    paper_test_series,
    paper_training_series,
)
from repro.errors import DatasetError


class TestCatalog:
    def test_all_table5_entries_present(self):
        catalog = dataset_catalog()
        expected = {
            "nyx-1", "nyx-2", "qmcpack-1", "qmcpack-2", "qmcpack-3",
            "rtm-small", "rtm-big", "hurricane",
        }
        assert set(catalog) == expected

    def test_catalog_entries_have_metadata(self):
        for entry in dataset_catalog().values():
            assert {"application", "fields", "timesteps", "shape", "domain"} <= set(
                entry
            )


class TestLoadSeries:
    def test_unknown_dataset_rejected(self):
        with pytest.raises(DatasetError):
            load_series("nyx-9", "baryon_density")

    def test_unknown_field_rejected(self):
        with pytest.raises(DatasetError):
            load_series("nyx-1", "pressure")

    def test_snapshot_counts_match_catalog(self):
        catalog = dataset_catalog()
        for name in ("nyx-1", "rtm-small", "hurricane"):
            field = catalog[name]["fields"][0]
            series = load_series(name, field)
            assert len(series) == catalog[name]["timesteps"]

    def test_caching_returns_same_object(self):
        a = load_series("nyx-1", "baryon_density")
        b = load_series("nyx-1", "baryon_density")
        assert a is b

    def test_configs_differ_between_nyx_runs(self):
        a = load_series("nyx-1", "baryon_density").snapshots[0].data
        b = load_series("nyx-2", "baryon_density").snapshots[0].data
        assert not np.array_equal(a, b)

    def test_rtm_scales_differ_in_shape(self):
        small = load_series("rtm-small", "pressure").snapshots[0].data
        big = load_series("rtm-big", "pressure").snapshots[0].data
        assert big.size > small.size


class TestCapabilitySplits:
    @pytest.mark.parametrize("app", APPLICATIONS)
    def test_train_and_test_disjoint(self, app):
        train = paper_training_series(app)
        test = paper_test_series(app)
        train_names = {s.name for series in train for s in series}
        test_names = {s.name for series in test for s in series}
        assert train_names
        assert test_names
        assert not train_names & test_names

    def test_hurricane_level1_split(self):
        train = paper_training_series("hurricane")[0]
        test = paper_test_series("hurricane")[0]
        assert len(train) == 6
        assert len(test) == 1
        assert test.snapshots[0].label.endswith(f"t{HURRICANE_TEST_STEP}")

    def test_unknown_application_rejected(self):
        with pytest.raises(DatasetError):
            paper_training_series("lattice-qcd")
        with pytest.raises(DatasetError):
            paper_test_series("lattice-qcd")
