"""Unit tests for Compressibility Adjustment (Sec. IV-E2)."""

import numpy as np
import pytest

from repro.core.adjustment import (
    adjusted_ratio,
    constant_block_mask,
    nonconstant_fraction,
)
from repro.errors import InvalidConfiguration


class TestBlockMask:
    def test_constant_field_all_constant(self):
        mask = constant_block_mask(np.full((16, 16), 7.0))
        assert mask.all()

    def test_mixed_field(self):
        data = np.full((8, 8), 10.0)
        data[:4, :4] += np.random.default_rng(0).standard_normal((4, 4)) * 10
        mask = constant_block_mask(data, block_size=4)
        assert mask.shape == (2, 2)
        assert not mask[0, 0]
        assert mask[1, 1]

    def test_threshold_scales_with_mean(self):
        # Same relative deviation: classification must match.
        base = np.full((8, 8), 1.0)
        base[0, 0] = 1.05
        scaled = base * 1000
        assert np.array_equal(
            constant_block_mask(base), constant_block_mask(scaled)
        )

    def test_partial_blocks_padded(self):
        data = np.random.default_rng(1).standard_normal((9, 7))
        mask = constant_block_mask(data, block_size=4)
        assert mask.shape == (3, 2)

    def test_zero_mean_field_mostly_nonconstant(self, rng):
        data = rng.standard_normal((16, 16))
        assert nonconstant_fraction(data) > 0.9

    def test_bad_params_rejected(self):
        with pytest.raises(InvalidConfiguration):
            constant_block_mask(np.zeros((4, 4)), block_size=1)
        with pytest.raises(InvalidConfiguration):
            constant_block_mask(np.zeros((4, 4)), lam=0.0)
        with pytest.raises(InvalidConfiguration):
            constant_block_mask(np.zeros((4, 4)), lam=1.0)


class TestNonconstantFraction:
    def test_bounds(self, rng):
        data = rng.standard_normal((12, 12, 12))
        r = nonconstant_fraction(data)
        assert 0.0 <= r <= 1.0

    def test_sparse_field_has_low_r(self):
        data = np.zeros((32, 32))
        data[:4, :4] = np.random.default_rng(2).uniform(1, 2, (4, 4))
        assert nonconstant_fraction(data) < 0.1

    def test_lambda_monotonicity(self, rng):
        """Larger lambda -> more blocks counted constant -> lower R."""
        data = np.abs(rng.standard_normal((24, 24))) + 1.0
        r_small = nonconstant_fraction(data, lam=0.05)
        r_large = nonconstant_fraction(data, lam=0.15)
        assert r_large <= r_small


class TestAdjustedRatio:
    def test_formula_four(self):
        assert adjusted_ratio(100.0, 0.6) == pytest.approx(60.0)

    def test_full_nonconstant_is_identity(self):
        assert adjusted_ratio(42.0, 1.0) == 42.0

    def test_floor_at_one(self):
        assert adjusted_ratio(5.0, 0.01) == 1.0

    def test_bad_inputs_rejected(self):
        with pytest.raises(InvalidConfiguration):
            adjusted_ratio(0.0, 0.5)
        with pytest.raises(InvalidConfiguration):
            adjusted_ratio(10.0, 1.5)
        with pytest.raises(InvalidConfiguration):
            adjusted_ratio(10.0, -0.1)

    def test_all_constant_dataset_rejected(self):
        """R = 0 means ACR degenerates to 0 — no model can answer it."""
        with pytest.raises(InvalidConfiguration, match="entirely constant"):
            adjusted_ratio(10.0, 0.0)

    def test_all_constant_field_rejected_end_to_end(self):
        data = np.full((16, 16), 3.0)
        assert nonconstant_fraction(data) == 0.0
        with pytest.raises(InvalidConfiguration, match="entirely constant"):
            adjusted_ratio(25.0, nonconstant_fraction(data))

    def test_tiny_positive_r_clamps_not_raises(self):
        """The clamp path still owns every R in (0, 1]."""
        assert adjusted_ratio(10.0, 1e-9) == 1.0
        assert adjusted_ratio(10.0, 1e-3) == 1.0
