"""Unit tests for curve-based data augmentation (Sec. IV-B)."""

import numpy as np
import pytest

from repro.compressors import get_compressor
from repro.core.augmentation import (
    CompressionCurve,
    build_curve,
    stationary_configs,
)
from repro.errors import InvalidConfiguration


def _toy_curve():
    configs = np.logspace(-4, -1, 10)
    ratios = 5.0 + 40.0 * np.linspace(0, 1, 10) ** 2
    return CompressionCurve(
        configs=configs, ratios=ratios, log_config=True, build_seconds=0.0
    )


class TestCurve:
    def test_anchor_points_reproduced(self):
        curve = _toy_curve()
        for config, ratio in zip(curve.configs, curve.ratios):
            assert curve.ratio_for_config(config) == pytest.approx(ratio)

    def test_inversion_roundtrip(self):
        curve = _toy_curve()
        for ratio in np.linspace(6, 44, 12):
            config = curve.config_for_ratio(ratio)
            assert curve.ratio_for_config(config) == pytest.approx(ratio, rel=0.02)

    def test_ratio_range(self):
        curve = _toy_curve()
        lo, hi = curve.ratio_range
        assert lo == pytest.approx(5.0)
        assert hi == pytest.approx(45.0)

    def test_clamps_outside_range(self):
        curve = _toy_curve()
        assert curve.config_for_ratio(1.0) == pytest.approx(curve.configs[0])
        assert curve.config_for_ratio(1e9) == pytest.approx(curve.configs[-1])

    def test_nonmonotone_ratios_resolved_by_envelope(self):
        configs = np.array([1e-3, 1e-2, 1e-1])
        ratios = np.array([10.0, 8.0, 30.0])  # dip at the middle anchor
        curve = CompressionCurve(configs, ratios, True, 0.0)
        config = curve.config_for_ratio(9.0)
        assert configs[0] <= config <= configs[-1]

    def test_sample_counts_and_range(self):
        curve = _toy_curve()
        ratios, configs = curve.sample(50, seed=1)
        assert ratios.shape == configs.shape == (50,)
        lo, hi = curve.ratio_range
        assert ratios.min() >= lo - 1e-9
        assert ratios.max() <= hi + 1e-9

    def test_sample_deterministic(self):
        curve = _toy_curve()
        a = curve.sample(20, seed=5)
        b = curve.sample(20, seed=5)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_too_few_points_rejected(self):
        with pytest.raises(InvalidConfiguration):
            CompressionCurve(np.array([1.0]), np.array([2.0]), False, 0.0)

    def test_unsorted_configs_rejected(self):
        with pytest.raises(InvalidConfiguration):
            CompressionCurve(
                np.array([2.0, 1.0]), np.array([1.0, 2.0]), False, 0.0
            )


class TestStationaryConfigs:
    def test_log_spacing_for_abs(self, smooth_field3d):
        comp = get_compressor("sz")
        configs = stationary_configs(comp, smooth_field3d, 10)
        logs = np.log10(configs)
        assert np.allclose(np.diff(logs), np.diff(logs)[0])

    def test_integer_grid_for_precision(self, smooth_field3d):
        comp = get_compressor("fpzip")
        configs = stationary_configs(comp, smooth_field3d, 12)
        assert np.array_equal(configs, np.round(configs))
        assert configs.min() >= 10 and configs.max() <= 32

    def test_build_curve_end_to_end(self, smooth_field3d):
        comp = get_compressor("sz")
        curve = build_curve(comp, smooth_field3d, n_points=6)
        assert curve.configs.size == 6
        assert curve.build_seconds > 0
        assert (np.diff(np.maximum.accumulate(curve.ratios)) >= 0).all()

    def test_interpolation_accuracy_within_paper_band(self, smooth_field3d):
        """Fig. 2's claim: interpolated configs land close to requested CRs."""
        comp = get_compressor("sz")
        curve = build_curve(comp, smooth_field3d, n_points=25)
        lo, hi = curve.ratio_range
        targets = np.linspace(lo * 1.1, hi * 0.9, 6)
        errors = []
        for target in targets:
            config = curve.config_for_ratio(float(target))
            measured = comp.compression_ratio(smooth_field3d, config)
            errors.append(abs(measured - target) / target)
        assert float(np.mean(errors)) < 0.12  # paper: 3-5 % on 512^3 data
