"""Unit tests for the CART regression tree."""

import numpy as np
import pytest

from repro.errors import InvalidConfiguration, NotFittedError
from repro.ml.tree import DecisionTreeRegressor


def _step_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, (n, 1))
    y = np.where(x[:, 0] < 0.5, 1.0, 3.0)
    return x, y


class TestFitting:
    def test_learns_a_step_function(self):
        x, y = _step_data()
        tree = DecisionTreeRegressor(max_depth=2).fit(x, y)
        pred = tree.predict(np.array([[0.2], [0.8]]))
        assert pred[0] == pytest.approx(1.0)
        assert pred[1] == pytest.approx(3.0)

    def test_pure_leaf_stops_early(self):
        x = np.array([[0.0], [1.0], [2.0]])
        y = np.array([5.0, 5.0, 5.0])
        tree = DecisionTreeRegressor().fit(x, y)
        assert tree.node_count == 1
        assert tree.depth == 0

    def test_max_depth_respected(self, rng):
        x = rng.uniform(0, 1, (300, 3))
        y = rng.standard_normal(300)
        tree = DecisionTreeRegressor(max_depth=4).fit(x, y)
        assert tree.depth <= 4

    def test_min_samples_leaf_respected(self, rng):
        x = rng.uniform(0, 1, (100, 2))
        y = rng.standard_normal(100)
        tree = DecisionTreeRegressor(min_samples_leaf=20).fit(x, y)
        # With 100 samples and 20-sample leaves, at most 5 leaves exist.
        n_leaves = (tree._nodes["feature"] == -1).sum()
        assert n_leaves <= 5

    def test_deep_tree_interpolates_training_data(self, rng):
        x = rng.uniform(0, 1, (64, 2))
        y = rng.standard_normal(64)
        tree = DecisionTreeRegressor().fit(x, y)
        assert np.allclose(tree.predict(x), y)

    def test_sample_weight_shifts_leaf_values(self):
        x = np.zeros((4, 1))
        y = np.array([0.0, 0.0, 0.0, 10.0])
        w = np.array([1.0, 1.0, 1.0, 97.0])
        tree = DecisionTreeRegressor(max_depth=1).fit(x, y, sample_weight=w)
        assert tree.predict(np.zeros((1, 1)))[0] == pytest.approx(9.7)

    def test_single_sample(self):
        tree = DecisionTreeRegressor().fit(np.array([[1.0]]), np.array([2.0]))
        assert tree.predict(np.array([[99.0]]))[0] == 2.0


class TestValidation:
    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))

    def test_bad_shapes_rejected(self):
        with pytest.raises(InvalidConfiguration):
            DecisionTreeRegressor().fit(np.zeros(5), np.zeros(5))
        with pytest.raises(InvalidConfiguration):
            DecisionTreeRegressor().fit(np.zeros((5, 2)), np.zeros(4))

    def test_bad_params_rejected(self):
        with pytest.raises(InvalidConfiguration):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(InvalidConfiguration):
            DecisionTreeRegressor(min_samples_split=1)
        with pytest.raises(InvalidConfiguration):
            DecisionTreeRegressor(min_samples_leaf=0)

    def test_negative_weights_rejected(self):
        with pytest.raises(InvalidConfiguration):
            DecisionTreeRegressor().fit(
                np.zeros((2, 1)), np.zeros(2), sample_weight=np.array([1.0, -1.0])
            )


class TestPrediction:
    def test_1d_feature_row_promoted(self):
        x, y = _step_data()
        tree = DecisionTreeRegressor(max_depth=2).fit(x, y)
        assert tree.predict(np.array([0.9]))[0] == pytest.approx(3.0)

    def test_feature_subsampling_is_deterministic(self, rng):
        x = rng.uniform(0, 1, (200, 6))
        y = x[:, 0] * 2 + x[:, 3]
        t1 = DecisionTreeRegressor(max_features=2, random_state=7).fit(x, y)
        t2 = DecisionTreeRegressor(max_features=2, random_state=7).fit(x, y)
        probe = rng.uniform(0, 1, (20, 6))
        assert np.array_equal(t1.predict(probe), t2.predict(probe))
