"""Unit tests for the append-only serving-outcome log."""

import json
import threading

import numpy as np
import pytest

from repro.core.inference import Estimate
from repro.errors import InvalidConfiguration
from repro.lifecycle import OutcomeLog, OutcomeRecord, read_outcomes

pytestmark = pytest.mark.lifecycle


def make_record(i: int = 0, measured: float | None = None) -> OutcomeRecord:
    return OutcomeRecord(
        dataset_key=f"ds-{i}",
        compressor="sz",
        features=(1.0 + i, 0.5, 0.25, 0.1, 0.9),
        nonconstant=0.8,
        target_ratio=10.0,
        adjusted_target=8.0,
        config=1e-3,
        tier="model",
        confidence=0.9,
        measured_ratio=measured,
        source="test",
        timestamp=float(i),
    )


class TestOutcomeRecord:
    def test_roundtrip_through_dict(self):
        record = make_record(3, measured=9.5)
        assert OutcomeRecord.from_dict(record.to_dict()) == record

    def test_from_estimate_copies_fields(self):
        estimate = Estimate(
            config=2e-3,
            target_ratio=12.0,
            adjusted_target=9.6,
            nonconstant=0.8,
            features=np.array([1.0, 2.0, 3.0, 4.0, 5.0]),
            analysis_seconds=0.01,
            tier="curve",
            confidence=0.4,
            fallback_reason="low confidence",
        )
        record = OutcomeRecord.from_estimate(
            estimate, dataset_key="k", compressor="sz",
            measured_ratio=11.0, source="guarded",
        )
        assert record.config == 2e-3
        assert record.tier == "curve"
        assert record.features == (1.0, 2.0, 3.0, 4.0, 5.0)
        assert record.measured_ratio == 11.0
        assert record.timestamp > 0

    def test_trainable_requires_usable_measurement(self):
        assert make_record(measured=9.0).trainable
        assert not make_record(measured=None).trainable
        assert not make_record(measured=float("nan")).trainable
        assert not make_record(measured=-1.0).trainable

    def test_relative_error_is_formula_5(self):
        record = make_record(measured=8.0)
        assert record.relative_error == pytest.approx(0.2)
        assert make_record(measured=None).relative_error is None

    @pytest.mark.objective
    def test_pre_objective_rows_parse_as_ratio(self):
        """Rows written before the objective refactor keep loading."""
        legacy = make_record(measured=9.0).to_dict()
        legacy.pop("objective", None)
        legacy.pop("measured_psnr", None)
        record = OutcomeRecord.from_dict(legacy)
        assert record.objective == ""
        assert record.objective_kind == "ratio"
        assert record.objective_value == record.target_ratio
        assert record.measured_psnr is None
        assert record.trainable

    @pytest.mark.objective
    def test_quality_row_round_trip(self):
        estimate = Estimate(
            config=2e-3,
            target_ratio=0.0,
            adjusted_target=0.0,
            nonconstant=0.8,
            features=np.array([1.0, 2.0, 3.0, 4.0, 5.0]),
            analysis_seconds=0.01,
            tier="probe",
        )
        from repro.core.objective import PSNRTarget

        object.__setattr__(estimate, "objective", PSNRTarget(55.0))
        record = OutcomeRecord.from_estimate(
            estimate, dataset_key="k", compressor="sz",
            measured_ratio=11.0, measured_psnr=54.2, source="guarded",
        )
        assert record.objective == "psnr:55"
        assert record.objective_kind == "psnr"
        assert record.objective_value == 55.0
        assert record.measured_psnr == 54.2
        assert OutcomeRecord.from_dict(record.to_dict()) == record

    @pytest.mark.objective
    def test_non_finite_measured_psnr_dropped(self):
        estimate = Estimate(
            config=2e-3,
            target_ratio=0.0,
            adjusted_target=0.0,
            nonconstant=1.0,
            features=np.array([1.0]),
            analysis_seconds=0.0,
            tier="probe",
        )
        record = OutcomeRecord.from_estimate(
            estimate, dataset_key="k", compressor="sz",
            measured_psnr=float("inf"), source="guarded",
        )
        assert record.measured_psnr is None


class TestOutcomeLog:
    def test_append_flush_replay(self, tmp_path):
        path = tmp_path / "outcomes.jsonl"
        with OutcomeLog(path) as log:
            for i in range(5):
                log.record(make_record(i, measured=9.0 + i))
            assert len(log) == 5
        replay = read_outcomes(path)
        assert [r.dataset_key for r in replay.records] == [
            f"ds-{i}" for i in range(5)
        ]
        assert replay.torn_lines == 0
        assert len(replay.trainable) == 5

    def test_rotation_keeps_append_order(self, tmp_path):
        path = tmp_path / "outcomes.jsonl"
        with OutcomeLog(path, max_bytes=4096, max_files=8) as log:
            for i in range(60):
                log.record(make_record(i))
            assert log.rotations >= 1
        replay = read_outcomes(path)
        assert [r.timestamp for r in replay.records] == [
            float(i) for i in range(60)
        ]
        assert len(replay.files) == log.rotations + 1

    def test_rotation_drops_oldest_generation(self, tmp_path):
        path = tmp_path / "outcomes.jsonl"
        with OutcomeLog(path, max_bytes=4096, max_files=1) as log:
            for i in range(100):
                log.record(make_record(i))
        replay = read_outcomes(path)
        # Only one rotated generation + the live file survive.
        assert len(replay.files) == 2
        assert replay.records[-1].timestamp == 99.0

    def test_torn_line_skipped_and_counted(self, tmp_path):
        path = tmp_path / "outcomes.jsonl"
        with OutcomeLog(path) as log:
            log.record(make_record(0))
            log.record(make_record(1))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"dataset_key": "torn, no newline, no clos')
        replay = read_outcomes(path)
        assert len(replay.records) == 2
        assert replay.torn_lines == 1

    def test_concurrent_writers_never_tear(self, tmp_path):
        path = tmp_path / "outcomes.jsonl"
        log = OutcomeLog(path)
        barrier = threading.Barrier(8)

        def writer(worker: int) -> None:
            barrier.wait()
            for i in range(50):
                log.record(make_record(worker * 1000 + i))

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        log.close()
        replay = read_outcomes(path)
        assert replay.torn_lines == 0
        assert len(replay.records) == 8 * 50
        for line in path.read_text().splitlines():
            json.loads(line)  # every line is complete JSON

    def test_closed_log_refuses_writes(self, tmp_path):
        log = OutcomeLog(tmp_path / "o.jsonl")
        log.record(make_record(0))
        log.close()
        log.close()  # idempotent
        with pytest.raises(InvalidConfiguration):
            log.record(make_record(1))

    def test_missing_file_is_empty_replay(self, tmp_path):
        replay = read_outcomes(tmp_path / "never-written.jsonl")
        assert replay.records == [] and replay.files == []

    def test_validates_knobs(self, tmp_path):
        with pytest.raises(InvalidConfiguration):
            OutcomeLog(tmp_path / "o.jsonl", max_bytes=100)
        with pytest.raises(InvalidConfiguration):
            OutcomeLog(tmp_path / "o.jsonl", max_files=0)

    def test_metrics_counter_labels_source(self, tmp_path):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        with OutcomeLog(tmp_path / "o.jsonl", registry=registry) as log:
            log.record(make_record(0))
            log.record(make_record(1))
        text = registry.render_prometheus()
        assert "repro_lifecycle_outcomes_total" in text
        assert 'source="test"' in text
