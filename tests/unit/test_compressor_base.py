"""Unit tests for the compressor interface, blob and registry."""

import numpy as np
import pytest

from repro.compressors import (
    available_compressors,
    get_compressor,
    register_compressor,
)
from repro.compressors.base import CompressedBlob, Compressor
from repro.errors import (
    CompressionError,
    ErrorBoundViolation,
    InvalidConfiguration,
)


class TestBlob:
    def test_ratio(self):
        blob = CompressedBlob(
            data=b"x" * 100,
            original_shape=(10, 10),
            original_dtype="float32",
            compressor="sz",
            config=0.1,
        )
        assert blob.original_nbytes == 400
        assert blob.compression_ratio == pytest.approx(4.0)

    def test_empty_payload_rejected(self):
        blob = CompressedBlob(
            data=b"", original_shape=(4,), original_dtype="float64",
            compressor="sz", config=0.1,
        )
        with pytest.raises(CompressionError):
            _ = blob.compression_ratio


class TestRegistry:
    def test_all_four_registered(self):
        assert set(available_compressors()) >= {"sz", "zfp", "fpzip", "mgard"}

    def test_get_unknown_raises(self):
        with pytest.raises(CompressionError):
            get_compressor("nope")

    def test_get_passes_kwargs(self):
        comp = get_compressor("zfp", mode="rate")
        assert comp.mode == "rate"

    def test_register_rejects_non_compressor(self):
        with pytest.raises(TypeError):
            register_compressor(int)


class TestValidation:
    def test_rejects_integer_arrays(self):
        comp = get_compressor("sz")
        with pytest.raises(CompressionError):
            comp.compress(np.arange(10), 0.1)

    def test_rejects_empty(self):
        comp = get_compressor("sz")
        with pytest.raises(CompressionError):
            comp.compress(np.zeros((0,), np.float64), 0.1)

    def test_rejects_nan(self):
        comp = get_compressor("sz")
        data = np.ones((8, 8))
        data[0, 0] = np.nan
        with pytest.raises(CompressionError):
            comp.compress(data, 0.1)

    def test_rejects_rank5(self):
        comp = get_compressor("sz")
        with pytest.raises(CompressionError):
            comp.compress(np.ones((2, 2, 2, 2, 2)), 0.1)

    def test_rejects_nonpositive_bound(self):
        comp = get_compressor("sz")
        with pytest.raises(InvalidConfiguration):
            comp.compress(np.ones((4, 4)), 0.0)

    def test_rejects_foreign_blob(self, smooth_field3d):
        sz = get_compressor("sz")
        mgard = get_compressor("mgard")
        blob = sz.compress(smooth_field3d, 0.01)
        with pytest.raises(CompressionError):
            mgard.decompress(blob)


class TestVerify:
    def test_passes_on_honest_reconstruction(self, smooth_field3d):
        comp = get_compressor("sz")
        recon, blob = comp.roundtrip(smooth_field3d, 0.01)
        comp.verify(smooth_field3d, recon, blob.config)

    def test_raises_on_violation(self, smooth_field3d):
        comp = get_compressor("sz")
        fake = smooth_field3d + 1.0
        with pytest.raises(ErrorBoundViolation):
            comp.verify(smooth_field3d, fake, 0.01)


class TestConfigDomain:
    def test_abs_domain_tracks_value_range(self, smooth_field3d):
        comp = get_compressor("sz")
        lo, hi = comp.config_domain(smooth_field3d)
        value_range = float(np.ptp(smooth_field3d))
        assert lo == pytest.approx(1e-6 * value_range)
        assert hi == pytest.approx(0.1 * value_range)

    def test_abs_domain_requires_array(self):
        comp = get_compressor("sz")
        with pytest.raises(InvalidConfiguration):
            comp.config_domain()

    def test_constant_array_domain_is_positive(self):
        comp = get_compressor("sz")
        lo, hi = comp.config_domain(np.full((8, 8), 5.0))
        assert 0 < lo < hi

    def test_precision_domain_fixed(self):
        comp = get_compressor("fpzip")
        lo, hi = comp.config_domain()
        assert (lo, hi) == (10.0, 32.0)
