"""Unit tests for the FRaZ baseline."""

import numpy as np
import pytest

from repro.baselines.fraz import FRaZ
from repro.compressors import get_compressor
from repro.errors import InvalidConfiguration


@pytest.fixture(scope="module")
def field():
    rng = np.random.default_rng(3)
    lin = np.linspace(0, 4 * np.pi, 24)
    x, y, z = np.meshgrid(lin, lin, lin, indexing="ij")
    return (np.sin(x) * np.cos(y) + 0.05 * rng.standard_normal((24,) * 3)).astype(
        np.float32
    )


class TestSearch:
    def test_budget_respected(self, field):
        comp = get_compressor("sz")
        for budget in (6, 15):
            result = FRaZ(comp, max_iterations=budget).search(field, 10.0)
            assert result.iterations <= budget

    def test_more_iterations_not_worse(self, field):
        comp = get_compressor("sz")
        cache = {}
        errors = {}
        for budget in (6, 30):
            result = FRaZ(comp, max_iterations=budget).search(
                field, 12.0, cache=cache
            )
            errors[budget] = result.estimation_error
        assert errors[30] <= errors[6] + 1e-9

    def test_result_is_best_evaluation(self, field):
        comp = get_compressor("sz")
        result = FRaZ(comp, max_iterations=9).search(field, 8.0)
        best = min(abs(r - 8.0) for _, r in result.evaluations)
        assert abs(result.measured_ratio - 8.0) == pytest.approx(best)

    def test_cache_reuses_evaluations(self, field):
        comp = get_compressor("sz")
        cache = {}
        FRaZ(comp, max_iterations=6).search(field, 10.0, cache=cache)
        size_after_first = len(cache)
        result = FRaZ(comp, max_iterations=6).search(field, 10.0, cache=cache)
        assert len(cache) == size_after_first
        # Cached runs still report per-evaluation compressor time.
        assert result.search_seconds > 0

    def test_eval_times_align(self, field):
        comp = get_compressor("sz")
        result = FRaZ(comp, max_iterations=6).search(field, 10.0)
        assert len(result.eval_seconds) == len(result.evaluations)
        assert result.search_seconds == pytest.approx(sum(result.eval_seconds))

    def test_precision_compressor_grid(self, field):
        comp = get_compressor("fpzip")
        result = FRaZ(comp, max_iterations=10).search(field, 2.0)
        assert result.config == round(result.config)
        assert result.iterations <= 10

    def test_log_scale_variant_converges_faster(self, field):
        comp = get_compressor("sz")
        target = 5.0
        linear = FRaZ(comp, max_iterations=9, search_scale="linear").search(
            field, target
        )
        logspace = FRaZ(comp, max_iterations=9, search_scale="log").search(
            field, target
        )
        assert logspace.estimation_error <= linear.estimation_error + 0.05

    def test_explicit_domain(self, field):
        comp = get_compressor("sz")
        result = FRaZ(comp, max_iterations=6).search(
            field, 10.0, domain=(1e-4, 1e-1)
        )
        assert all(1e-4 <= c <= 1e-1 for c, _ in result.evaluations)


class TestValidation:
    def test_bad_target_rejected(self, field):
        comp = get_compressor("sz")
        with pytest.raises(InvalidConfiguration):
            FRaZ(comp).search(field, -1.0)

    def test_bad_params_rejected(self):
        comp = get_compressor("sz")
        with pytest.raises(InvalidConfiguration):
            FRaZ(comp, max_iterations=1)
        with pytest.raises(InvalidConfiguration):
            FRaZ(comp, n_bins=0)
        with pytest.raises(InvalidConfiguration):
            FRaZ(comp, search_scale="sqrt")
