"""Unit tests for the FPZIP-like precision compressor."""

import numpy as np
import pytest

from repro.compressors.fpzip import (
    FPZIPCompressor,
    _float_to_ordered,
    _ordered_to_float,
)
from repro.errors import InvalidConfiguration


class TestOrderedMapping:
    def test_roundtrip_bits(self, rng):
        values = rng.standard_normal(1000).astype(np.float32)
        ordered = _float_to_ordered(values.view(np.uint32))
        back = _ordered_to_float(ordered)
        assert np.array_equal(back.view(np.uint32), values.view(np.uint32))

    def test_order_preserving(self, rng):
        values = np.sort(rng.standard_normal(500).astype(np.float32))
        ordered = _float_to_ordered(values.view(np.uint32))
        assert (np.diff(ordered) >= 0).all()

    def test_signed_values(self):
        values = np.array([-2.0, -1.0, -0.0, 0.0, 1.0, 2.0], dtype=np.float32)
        ordered = _float_to_ordered(values.view(np.uint32))
        assert (np.diff(ordered) >= 0).all()


class TestRoundtrip:
    def test_lossless_at_full_precision(self, smooth_field3d):
        comp = FPZIPCompressor()
        recon, _ = comp.roundtrip(smooth_field3d, 32)
        assert np.array_equal(recon, smooth_field3d)

    @pytest.mark.parametrize("precision", [10, 14, 20, 28])
    def test_precision_bound_respected(self, smooth_field3d, precision):
        comp = FPZIPCompressor()
        recon, blob = comp.roundtrip(smooth_field3d, precision)
        comp.verify(smooth_field3d, recon, blob.config)

    def test_ratio_decreases_with_precision(self, smooth_field3d):
        comp = FPZIPCompressor()
        ratios = [
            comp.compression_ratio(smooth_field3d, p) for p in (12, 18, 24, 32)
        ]
        assert ratios == sorted(ratios, reverse=True)

    @pytest.mark.parametrize("shape", [(9,), (5, 7), (6, 5, 4), (3, 4, 5, 2)])
    def test_odd_shapes(self, rng, shape):
        comp = FPZIPCompressor()
        data = rng.standard_normal(shape).astype(np.float32)
        recon, blob = comp.roundtrip(data, 16)
        comp.verify(data, recon, blob.config)

    def test_error_is_relative_to_magnitude(self, rng):
        """Truncation error scales with each value's own exponent."""
        comp = FPZIPCompressor()
        small = np.full((8, 8), 1e-3, dtype=np.float32) * (
            1 + 0.1 * rng.standard_normal((8, 8)).astype(np.float32)
        )
        large = small * 1e6
        recon_s, _ = comp.roundtrip(small, 14)
        recon_l, _ = comp.roundtrip(large, 14)
        err_s = np.max(np.abs(small - recon_s))
        err_l = np.max(np.abs(large - recon_l))
        assert err_l > err_s * 1e4  # absolute error follows magnitude

    def test_signed_data(self, rng):
        comp = FPZIPCompressor()
        data = rng.standard_normal((10, 10, 10)).astype(np.float32)
        recon, blob = comp.roundtrip(data, 18)
        comp.verify(data, recon, blob.config)
        assert np.sign(recon[np.abs(data) > 0.1]).tolist() == np.sign(
            data[np.abs(data) > 0.1]
        ).tolist()

    def test_precision_snapped_to_int(self, smooth_field3d):
        comp = FPZIPCompressor()
        blob = comp.compress(smooth_field3d, 15.6)
        assert blob.config == 16.0

    def test_out_of_domain_precision_rejected(self, smooth_field3d):
        comp = FPZIPCompressor()
        with pytest.raises(InvalidConfiguration):
            comp.compress(smooth_field3d, 5)
        with pytest.raises(InvalidConfiguration):
            comp.compress(smooth_field3d, 40)

    def test_zeros_compress_extremely_well(self):
        comp = FPZIPCompressor()
        data = np.zeros((16, 16, 16), dtype=np.float32)
        blob = comp.compress(data, 16)
        assert blob.compression_ratio > 100
