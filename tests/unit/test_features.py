"""Unit tests for feature extraction (Sec. IV-C) and sampling (IV-E1)."""

import numpy as np
import pytest

from repro.core.features import (
    FEATURE_NAMES,
    SELECTED_FEATURES,
    extract_features,
    uniform_sample,
)
from repro.errors import InvalidConfiguration


class TestUniformSampling:
    def test_stride4_on_3d_is_about_1_5_percent(self):
        data = np.zeros((64, 64, 64))
        sampled = uniform_sample(data, 4)
        fraction = sampled.size / data.size
        assert fraction == pytest.approx(1 / 64, rel=1e-9)  # ~1.56 %

    def test_stride1_is_identity(self, smooth_field3d):
        assert uniform_sample(smooth_field3d, 1) is smooth_field3d

    def test_small_arrays_not_destroyed(self):
        data = np.zeros((3, 3))
        assert uniform_sample(data, 4).shape == (3, 3)

    def test_bad_stride_rejected(self):
        with pytest.raises(InvalidConfiguration):
            uniform_sample(np.zeros((4, 4)), 0)


class TestFeatureValues:
    def test_constant_field(self):
        features = extract_features(np.full((12, 12), 5.0))
        assert features.value_range == 0.0
        assert features.mean_value == 5.0
        assert features.mnd == 0.0
        assert features.msd == 0.0
        assert features.mean_gradient == 0.0

    def test_value_range_and_mean(self, rng):
        data = rng.uniform(2.0, 6.0, (20, 20))
        features = extract_features(data)
        assert features.value_range == pytest.approx(np.ptp(data))
        assert features.mean_value == pytest.approx(data.mean())

    def test_mnd_on_alternating_1d(self):
        data = np.array([0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0])
        features = extract_features(data)
        # Interior points differ from their neighbor average by 1.
        assert features.mnd > 0.7

    def test_smooth_field_has_smaller_mnd_than_noise(self, rng):
        lin = np.linspace(0, np.pi, 32)
        smooth = np.sin(lin)[:, None] * np.sin(lin)[None, :]
        noise = rng.standard_normal((32, 32))
        assert extract_features(smooth).mnd < extract_features(noise).mnd

    def test_mld_zero_on_linear_ramp(self):
        x, y = np.meshgrid(np.arange(16.0), np.arange(16.0), indexing="ij")
        features = extract_features(2 * x + 3 * y)
        assert features.mld == pytest.approx(0.0, abs=1e-10)

    def test_msd_detects_wave_texture(self):
        t = np.linspace(0, 20 * np.pi, 512)
        wave = np.sin(t)
        rough = np.sign(np.sin(t))  # square wave: spline fit fails
        assert extract_features(wave).msd < extract_features(rough).msd

    def test_gradient_stats_ordering(self, rng):
        data = rng.standard_normal((30, 30)).cumsum(axis=0)
        features = extract_features(data)
        assert features.min_gradient <= features.mean_gradient <= features.max_gradient

    def test_selected_vector_order(self, rng):
        features = extract_features(rng.standard_normal((10, 10)))
        vector = features.selected()
        assert vector.shape == (5,)
        assert vector[0] == features.value_range
        assert vector[4] == features.msd

    def test_all_features_vector(self, rng):
        features = extract_features(rng.standard_normal((10, 10)))
        assert features.all_features().shape == (len(FEATURE_NAMES),)

    def test_selected_names_match_paper(self):
        assert SELECTED_FEATURES == ("value_range", "mean_value", "mnd", "mld", "msd")

    def test_empty_rejected(self):
        with pytest.raises(InvalidConfiguration):
            extract_features(np.zeros((0,)))


class TestSampledFeatures:
    def test_sampled_close_to_full(self, rng):
        """Stride-4 features approximate full-scan features (Sec. IV-E1)."""
        lin = np.linspace(0, 4 * np.pi, 64)
        x, y, z = np.meshgrid(lin, lin, lin, indexing="ij")
        data = 5.0 + np.sin(x) * np.cos(y) + 0.1 * rng.standard_normal((64, 64, 64))
        full = extract_features(data, stride=1)
        sampled = extract_features(data, stride=4)
        assert sampled.mean_value == pytest.approx(full.mean_value, rel=0.05)
        assert sampled.value_range == pytest.approx(full.value_range, rel=0.15)

    def test_small_grid_msd_fallback(self):
        """Grids too small for the cubic stencil degrade gracefully."""
        data = np.random.default_rng(0).standard_normal((4, 4))
        features = extract_features(data)
        assert features.msd == pytest.approx(features.mnd)


class TestFeatureEdgeCases:
    def test_dataset_smaller_than_stride(self):
        """Sampling falls back to the full view; features stay finite."""
        data = np.random.default_rng(3).standard_normal((3, 3))
        features = extract_features(data, stride=8)
        full = extract_features(data, stride=1)
        assert np.isfinite(features.all_features()).all()
        assert features.mean_value == pytest.approx(full.mean_value)

    def test_single_element_array(self):
        """A 1-point field has no neighbors: degenerate but defined."""
        features = extract_features(np.array([7.5]))
        assert features.mean_value == 7.5
        assert features.value_range == 0.0
        assert features.mnd == 0.0
        assert features.msd == 0.0
        assert np.isfinite(features.all_features()).all()

    def test_nan_input_raises_typed_error(self):
        data = np.ones((8, 8))
        data[2, 2] = np.nan
        with pytest.raises(InvalidConfiguration, match="non-finite"):
            extract_features(data)

    def test_inf_input_raises_typed_error(self):
        data = np.ones((8, 8))
        data[0, 0] = np.inf
        with pytest.raises(InvalidConfiguration, match="non-finite"):
            extract_features(data)

    def test_nan_outside_sampled_lattice_is_invisible(self):
        """The guard inspects the sampled view, like extraction itself."""
        data = np.ones((8, 8))
        data[1, 1] = np.nan  # off the stride-4 lattice
        features = extract_features(data, stride=4)
        assert np.isfinite(features.all_features()).all()
