"""Determinism guarantees: identical inputs give identical bytes.

Reproducible archives matter for scientific data management (checksums,
dedup); every compressor and the dataset generators must be bit-stable
across calls and processes.
"""

import numpy as np
import pytest

from repro.compressors import get_compressor
from repro.datasets import (
    generate_hurricane_field,
    generate_nyx_field,
    generate_qmcpack_field,
)


@pytest.mark.parametrize("name,config", [
    ("sz", 0.01),
    ("sz2", 0.01),
    ("zfp", 0.01),
    ("mgard", 0.01),
    ("fpzip", 16),
    ("digit", 4),
])
class TestCompressorDeterminism:
    def test_identical_payloads(self, smooth_field3d, name, config):
        comp = get_compressor(name)
        blob_a = comp.compress(smooth_field3d, config)
        blob_b = comp.compress(smooth_field3d, config)
        assert blob_a.data == blob_b.data

    def test_fresh_instance_same_payload(self, smooth_field3d, name, config):
        blob_a = get_compressor(name).compress(smooth_field3d, config)
        blob_b = get_compressor(name).compress(smooth_field3d, config)
        assert blob_a.data == blob_b.data

    def test_decompression_deterministic(self, smooth_field3d, name, config):
        comp = get_compressor(name)
        blob = comp.compress(smooth_field3d, config)
        rec_a = comp.decompress(blob)
        rec_b = comp.decompress(blob)
        assert np.array_equal(rec_a, rec_b)


class TestDatasetDeterminism:
    def test_nyx_stable(self):
        a = generate_nyx_field("temperature", shape=(16,) * 3, seed=3, timestep=2)
        b = generate_nyx_field("temperature", shape=(16,) * 3, seed=3, timestep=2)
        assert np.array_equal(a, b)

    def test_qmcpack_stable(self):
        a = generate_qmcpack_field("spin1", n_orbitals=3, grid_shape=(10, 8, 8))
        b = generate_qmcpack_field("spin1", n_orbitals=3, grid_shape=(10, 8, 8))
        assert np.array_equal(a, b)

    def test_hurricane_stable(self):
        a = generate_hurricane_field("QCLOUD", timestep=20, shape=(8, 24, 24))
        b = generate_hurricane_field("QCLOUD", timestep=20, shape=(8, 24, 24))
        assert np.array_equal(a, b)
