"""Unit tests for the random forest regressor."""

import numpy as np
import pytest

from repro.errors import InvalidConfiguration, NotFittedError
from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import r2_score
from repro.ml.tree import DecisionTreeRegressor


def _friedman(n=400, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, (n, 5))
    y = (
        10 * np.sin(np.pi * x[:, 0] * x[:, 1])
        + 20 * (x[:, 2] - 0.5) ** 2
        + 10 * x[:, 3]
        + 5 * x[:, 4]
    )
    return x, y + 0.5 * rng.standard_normal(n)


class TestFitting:
    def test_beats_noise_floor(self):
        x, y = _friedman()
        forest = RandomForestRegressor(n_estimators=25, random_state=0).fit(
            x[:300], y[:300]
        )
        assert r2_score(y[300:], forest.predict(x[300:])) > 0.7

    def test_reduces_single_tree_variance(self):
        x, y = _friedman()
        tree = DecisionTreeRegressor(random_state=0).fit(x[:300], y[:300])
        forest = RandomForestRegressor(n_estimators=30, random_state=0).fit(
            x[:300], y[:300]
        )
        tree_r2 = r2_score(y[300:], tree.predict(x[300:]))
        forest_r2 = r2_score(y[300:], forest.predict(x[300:]))
        assert forest_r2 >= tree_r2 - 0.02

    def test_deterministic_with_seed(self):
        x, y = _friedman(150)
        f1 = RandomForestRegressor(n_estimators=8, random_state=3).fit(x, y)
        f2 = RandomForestRegressor(n_estimators=8, random_state=3).fit(x, y)
        probe = x[:10]
        assert np.array_equal(f1.predict(probe), f2.predict(probe))

    def test_estimator_count(self):
        x, y = _friedman(60)
        forest = RandomForestRegressor(n_estimators=5, random_state=0).fit(x, y)
        assert len(forest.estimators_) == 5

    def test_no_bootstrap_mode(self):
        x, y = _friedman(80)
        forest = RandomForestRegressor(
            n_estimators=3, bootstrap=False, max_features=None, random_state=0
        ).fit(x, y)
        # Without bootstrap or feature subsampling all trees are equal.
        p = [t.predict(x[:5]) for t in forest.estimators_]
        assert np.allclose(p[0], p[1]) and np.allclose(p[1], p[2])


class TestMaxFeatures:
    def test_sqrt_and_third_resolve(self):
        forest = RandomForestRegressor(max_features="sqrt")
        assert forest._resolve_max_features(9) == 3
        forest = RandomForestRegressor(max_features="third")
        assert forest._resolve_max_features(9) == 3
        assert forest._resolve_max_features(2) == 1

    def test_int_clamped(self):
        forest = RandomForestRegressor(max_features=100)
        assert forest._resolve_max_features(6) == 6

    def test_bad_values_rejected(self):
        with pytest.raises(InvalidConfiguration):
            RandomForestRegressor(max_features=0)._resolve_max_features(5)
        with pytest.raises(InvalidConfiguration):
            RandomForestRegressor(max_features="half")._resolve_max_features(5)


class TestValidation:
    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            RandomForestRegressor().predict(np.zeros((1, 3)))

    def test_zero_estimators_rejected(self):
        with pytest.raises(InvalidConfiguration):
            RandomForestRegressor(n_estimators=0)

    def test_bad_shapes_rejected(self):
        with pytest.raises(InvalidConfiguration):
            RandomForestRegressor().fit(np.zeros((5, 2)), np.zeros(6))
