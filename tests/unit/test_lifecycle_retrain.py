"""Unit tests for outcome-driven retraining and canary promotion."""

import math
from types import SimpleNamespace

import numpy as np
import pytest

import repro
from repro.compressors import get_compressor
from repro.errors import InvalidConfiguration
from repro.lifecycle import (
    BackgroundRetrainer,
    OutcomeRecord,
    evaluate_canary,
    training_rows_from_outcomes,
)
from repro.lifecycle.promote import invert_model_ratio, replay_errors
from repro.lifecycle.retrain import clone_with_model
from repro.serving import LATEST, ModelRegistry

from tests.conftest import small_forest_factory

pytestmark = pytest.mark.lifecycle


def make_record(
    i: int = 0,
    *,
    measured: float | None = 9.0,
    config: float = 1e-3,
    nonconstant: float = 0.8,
) -> OutcomeRecord:
    return OutcomeRecord(
        dataset_key=f"ds-{i}",
        compressor="sz",
        features=(1.0 + 0.1 * i, 0.5, 0.25, 0.1, 0.9),
        nonconstant=nonconstant,
        target_ratio=10.0,
        adjusted_target=8.0,
        config=config,
        tier="model",
        measured_ratio=measured,
        source="test",
        timestamp=float(i),
    )


@pytest.fixture(scope="module")
def fitted_pipeline():
    rng = np.random.default_rng(7)
    lin = np.linspace(0, 4 * np.pi, 20)
    x, y, _ = np.meshgrid(lin, lin, lin, indexing="ij")
    train = [
        (np.sin(x + 0.3 * i) * np.cos(y) + 0.03 * rng.standard_normal((20,) * 3))
        .astype(np.float32)
        for i in range(2)
    ]
    config = repro.FXRZConfig(stationary_points=8, augmented_samples=60)
    pipeline = repro.FXRZ(
        get_compressor("sz"), config=config, model_factory=small_forest_factory
    )
    pipeline.fit(train)
    return pipeline, train


class TestTrainingRows:
    def test_rows_mirror_training_matrix_convention(self):
        records = [make_record(0, measured=10.0, config=2e-3)]
        x, y, used = training_rows_from_outcomes(records, log_scale=True)
        assert used == 1 and x.shape == (1, 6)
        # ACR column: measured ratio through the non-constant fraction.
        assert x[0, 5] == pytest.approx(10.0 * 0.8)
        # Log-scale target: range-normalized log bound.
        scale = records[0].features[0]
        assert y[0] == pytest.approx(math.log10(2e-3 / scale))

    def test_linear_scale_regresses_raw_config(self):
        records = [make_record(0, measured=10.0, config=2e-3)]
        _, y, _ = training_rows_from_outcomes(records, log_scale=False)
        assert y[0] == pytest.approx(2e-3)

    def test_oversample_replicates_rows(self):
        records = [make_record(i, measured=9.0) for i in range(3)]
        x, y, used = training_rows_from_outcomes(
            records, log_scale=True, oversample=4
        )
        assert used == 3
        assert x.shape == (12, 6) and y.shape == (12,)

    def test_untrainable_records_skipped(self):
        records = [
            make_record(0, measured=None),
            make_record(1, measured=float("nan")),
            make_record(2, measured=9.0),
        ]
        _, _, used = training_rows_from_outcomes(records, log_scale=True)
        assert used == 1

    def test_empty_input_gives_empty_matrix(self):
        x, y, used = training_rows_from_outcomes([], log_scale=True)
        assert used == 0 and x.size == 0 and y.size == 0

    def test_oversample_validated(self):
        with pytest.raises(InvalidConfiguration):
            training_rows_from_outcomes([], log_scale=True, oversample=0)


class _LinearModel:
    """Fake model: config = slope * ACR (monotonic, exactly invertible)."""

    def __init__(self, slope: float):
        self.slope = slope

    def predict(self, rows):
        rows = np.asarray(rows)
        return self.slope * rows[:, -1]


def fake_pipeline(slope: float) -> SimpleNamespace:
    return SimpleNamespace(
        model=_LinearModel(slope),
        compressor=SimpleNamespace(config_scale="linear"),
    )


class TestInvertModelRatio:
    def test_recovers_acr_for_monotonic_model(self):
        pipe = fake_pipeline(1e-3)
        acr = invert_model_ratio(
            pipe.model,
            pipe.compressor,
            np.zeros(5),
            8e-3,
            acr_hi=32.0,
        )
        assert acr == pytest.approx(8.0, rel=1e-6)

    def test_out_of_range_configs_clamp_to_bounds(self):
        pipe = fake_pipeline(1e-3)
        low = invert_model_ratio(
            pipe.model, pipe.compressor, np.zeros(5), 1e-6, acr_hi=32.0
        )
        high = invert_model_ratio(
            pipe.model, pipe.compressor, np.zeros(5), 1.0, acr_hi=32.0
        )
        assert low == 1.0 and high == 32.0

    def test_invalid_config_rejected(self):
        pipe = fake_pipeline(1e-3)
        with pytest.raises(InvalidConfiguration):
            invert_model_ratio(
                pipe.model, pipe.compressor, np.zeros(5), 0.0, acr_hi=32.0
            )


class TestEvaluateCanary:
    #: Records whose configs follow config = 1e-3 * ACR exactly, so the
    #: slope-1e-3 model replays them with zero relative CR error.
    def records(self, n: int = 6) -> list[OutcomeRecord]:
        out = []
        for i in range(n):
            measured = 6.0 + i
            acr = measured * 0.8
            out.append(
                make_record(i, measured=measured, config=1e-3 * acr)
            )
        return out

    def test_calibrated_candidate_beats_miscalibrated_incumbent(self):
        report = evaluate_canary(
            fake_pipeline(2e-3),  # believes configs deliver half the ratio
            fake_pipeline(1e-3),  # exactly calibrated
            self.records(),
        )
        assert report.promote
        assert report.candidate_error == pytest.approx(0.0, abs=1e-6)
        assert report.incumbent_error == pytest.approx(0.5, rel=1e-6)
        assert report.reason.startswith("promoted:")

    def test_worse_candidate_held_back(self):
        report = evaluate_canary(
            fake_pipeline(1e-3), fake_pipeline(2e-3), self.records()
        )
        assert not report.promote
        assert report.reason.startswith("held back:")

    def test_margin_blocks_marginal_wins(self):
        # Candidate at slope 1.1e-3 is ~9% better than slope 1.2e-3 —
        # not enough against a 50% required margin.
        report = evaluate_canary(
            fake_pipeline(1.2e-3),
            fake_pipeline(1.1e-3),
            self.records(),
            margin=0.5,
        )
        assert not report.promote
        assert "margin" in report.reason

    def test_empty_holdout_never_promotes(self):
        report = evaluate_canary(
            fake_pipeline(1e-3), fake_pipeline(1e-3), []
        )
        assert not report.promote and report.n_records == 0

    def test_margin_validated(self):
        with pytest.raises(InvalidConfiguration):
            evaluate_canary(
                fake_pipeline(1e-3), fake_pipeline(1e-3), [], margin=1.0
            )

    def test_replay_errors_skips_untrainable(self):
        records = self.records(3) + [make_record(9, measured=None)]
        errors = replay_errors(fake_pipeline(1e-3), records)
        assert len(errors) == 3


class TestCloneWithModel:
    def test_clone_serves_new_model_with_same_corpus(self, fitted_pipeline):
        from repro.core.persistence import pipeline_fingerprint

        pipeline, train = fitted_pipeline
        model = small_forest_factory(123)
        x, y = pipeline._training.build_training_matrix()
        model.fit(x, y)
        clone = clone_with_model(pipeline, model)
        assert clone.model is model
        assert pipeline_fingerprint(clone) == pipeline_fingerprint(pipeline)
        estimate = clone.estimate_config(train[0], 8.0)
        assert estimate.config > 0


class _RecordingRetrainer(BackgroundRetrainer):
    """Trigger-logic probe: records calls instead of fitting anything."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.calls = []

    def retrain(self, records, *, triggered_by="manual"):
        self.calls.append(triggered_by)
        trainable = sum(1 for r in records if r.trainable)
        with self._lock:
            self._trained_through = trainable
        return SimpleNamespace(reason="stub", triggered_by=triggered_by)


class TestTriggering:
    def make(self, tmp_path, **kwargs):
        kwargs.setdefault("min_samples", 4)
        return _RecordingRetrainer(
            ModelRegistry(tmp_path / "reg"), "sz", **kwargs
        )

    def test_volume_trigger_fires_once_per_batch(self, tmp_path):
        retrainer = self.make(tmp_path)
        records = [make_record(i) for i in range(4)]
        assert retrainer.maybe_trigger(records)
        assert retrainer.wait(timeout=10)
        assert retrainer.calls == ["samples"]
        # Same records again: nothing fresh since the last retrain.
        assert not retrainer.maybe_trigger(records)

    def test_below_volume_does_not_trigger(self, tmp_path):
        retrainer = self.make(tmp_path)
        assert not retrainer.maybe_trigger([make_record(0)] * 3)
        assert retrainer.calls == []

    def test_drift_trigger_needs_two_trainable(self, tmp_path):
        detector = SimpleNamespace(drifting=True, reset=lambda: None)
        retrainer = self.make(tmp_path, detector=detector, min_samples=64)
        assert not retrainer.maybe_trigger([make_record(0)])
        assert retrainer.maybe_trigger([make_record(0), make_record(1)])
        assert retrainer.wait(timeout=10)
        assert retrainer.calls == ["drift"]

    def test_knobs_validated(self, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        with pytest.raises(InvalidConfiguration):
            BackgroundRetrainer(registry, "sz", min_samples=0)
        with pytest.raises(InvalidConfiguration):
            BackgroundRetrainer(registry, "sz", canary_fraction=1.0)
        with pytest.raises(InvalidConfiguration):
            BackgroundRetrainer(registry, "sz", n_candidates=0)


class TestRetrainerMetrics:
    def test_skipped_retrain_counts_result_and_idles_gauge(self, tmp_path):
        from repro import obs

        metrics = obs.MetricsRegistry()
        retrainer = BackgroundRetrainer(
            ModelRegistry(tmp_path / "reg"), "sz", metrics=metrics
        )
        result = retrainer.retrain([make_record(0)])
        assert result.candidate is None
        assert retrainer.state == "idle"
        text = metrics.render_prometheus()
        assert 'repro_lifecycle_retrains_total{result="skipped"} 1' in text
        assert "repro_lifecycle_retrainer_state 0" in text

    def test_failed_retrain_counts_error(self, tmp_path):
        from repro import obs

        class _Exploding(BackgroundRetrainer):
            def _retrain(self, records, *, triggered_by):
                self._set_state("fitting")
                raise InvalidConfiguration("boom")

        metrics = obs.MetricsRegistry()
        retrainer = _Exploding(
            ModelRegistry(tmp_path / "reg"), "sz", metrics=metrics
        )
        with pytest.raises(InvalidConfiguration):
            retrainer.retrain([make_record(0), make_record(1)])
        assert retrainer.state == "idle"
        text = metrics.render_prometheus()
        assert 'repro_lifecycle_retrains_total{result="error"} 1' in text
        assert "repro_lifecycle_retrainer_state 0" in text

    def test_completed_retrain_labels_promotion_outcome(
        self, fitted_pipeline, tmp_path
    ):
        from repro import obs

        pipeline, train = fitted_pipeline
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(pipeline)
        records = TestSynchronousRetrain().outcome_records(
            pipeline, train, (6.0, 8.0, 10.0, 12.0)
        )
        metrics = obs.MetricsRegistry()
        retrainer = BackgroundRetrainer(
            registry,
            "sz",
            min_samples=4,
            canary_fraction=0.25,
            n_candidates=1,
            metrics=metrics,
        )
        result = retrainer.retrain(records)
        expected = "promoted" if result.promoted is not None else "held"
        text = metrics.render_prometheus()
        assert (
            f'repro_lifecycle_retrains_total{{result="{expected}"}} 1' in text
        )
        assert retrainer.state == "idle"


class TestSynchronousRetrain:
    def outcome_records(self, pipeline, fields, targets) -> list[OutcomeRecord]:
        """Measured outcomes where the incumbent is exactly calibrated."""
        records = []
        for i, field in enumerate(fields):
            for target in targets:
                estimate = pipeline.estimate_config(field, target)
                records.append(
                    OutcomeRecord.from_estimate(
                        estimate,
                        dataset_key=f"ds-{i}",
                        compressor="sz",
                        measured_ratio=estimate.adjusted_target
                        / estimate.nonconstant,
                        source="test",
                    )
                )
        return records

    def test_retrain_publishes_unpromoted_candidate_then_canaries(
        self, fitted_pipeline, tmp_path
    ):
        pipeline, train = fitted_pipeline
        registry = ModelRegistry(tmp_path / "reg")
        incumbent = registry.publish(pipeline)
        records = self.outcome_records(pipeline, train, (6.0, 8.0, 10.0, 12.0))

        retrainer = BackgroundRetrainer(
            registry,
            "sz",
            min_samples=4,
            canary_fraction=0.25,
            n_candidates=1,
        )
        result = retrainer.retrain(records)

        assert result.triggered_by == "manual"
        assert result.trainable == len(records)
        assert result.holdout == 2  # ceil(0.25 * 8)
        assert result.train_rows == len(records) - result.holdout
        # The candidate is always published — promotion is the canary's
        # separate decision, recorded in the manifest either way.
        assert result.candidate.version == incumbent.version + 1
        assert result.report is not None
        latest = registry.resolve("sz", None, LATEST)
        if result.promoted is not None:
            assert latest.version == result.candidate.version
        else:
            assert latest.version == incumbent.version
        history = registry.history("sz")
        assert history[-1 if result.promoted is None else -2]["action"] == (
            "publish"
        )

    def test_too_few_outcomes_is_a_clean_no_op(self, fitted_pipeline, tmp_path):
        pipeline, _ = fitted_pipeline
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(pipeline)
        retrainer = BackgroundRetrainer(registry, "sz")
        result = retrainer.retrain([make_record(0)])
        assert result.candidate is None and result.promoted is None
        assert "not enough" in result.reason
        assert retrainer.retrains == 1
