"""Unit tests for the LZ77-style dictionary codec."""

import numpy as np
import pytest

from repro.encoding.lz import LZCodec
from repro.errors import CorruptStreamError


@pytest.fixture()
def codec():
    return LZCodec()


class TestRoundtrip:
    def test_repetitive_data_compresses(self, codec):
        data = b"scientific-data-" * 500
        blob = codec.compress(data)
        assert codec.decompress(blob) == data
        assert len(blob) < len(data) // 5

    def test_random_data_stored(self, codec, rng):
        data = bytes(rng.integers(0, 256, 4096).astype(np.uint8))
        blob = codec.compress(data)
        assert codec.decompress(blob) == data
        assert len(blob) <= len(data) + 6

    def test_empty(self, codec):
        assert codec.decompress(codec.compress(b"")) == b""

    def test_tiny_inputs(self, codec):
        for n in range(1, 8):
            data = bytes(range(n))
            assert codec.decompress(codec.compress(data)) == data

    def test_overlapping_match(self, codec):
        # Classic LZ77 case: run longer than the match distance.
        data = b"ab" + b"a" * 100
        assert codec.decompress(codec.compress(data)) == data

    def test_mixed_content(self, codec, rng):
        parts = []
        for _ in range(20):
            parts.append(b"header-block-" * 10)
            parts.append(bytes(rng.integers(0, 256, 100).astype(np.uint8)))
        data = b"".join(parts)
        assert codec.decompress(codec.compress(data)) == data

    def test_oversized_input_stored(self):
        codec = LZCodec(max_input=100)
        data = b"x" * 200
        blob = codec.compress(data)
        assert blob[0] == 0  # stored mode
        assert codec.decompress(blob) == data


class TestCorruption:
    def test_empty_blob_raises(self, codec):
        with pytest.raises(CorruptStreamError):
            codec.decompress(b"")

    def test_unknown_mode_raises(self, codec):
        with pytest.raises(CorruptStreamError):
            codec.decompress(b"\x07abc")

    def test_bad_distance_raises(self, codec):
        good = codec.compress(b"abcdabcdabcdabcd" * 10)
        assert good[0] == 1
        with pytest.raises(CorruptStreamError):
            # Truncating the token stream corrupts lengths/distances.
            codec.decompress(good[:-3])
