"""Unit tests for k-fold CV, train/test split and grid search."""

import numpy as np
import pytest

from repro.errors import InvalidConfiguration
from repro.ml.model_selection import GridSearchCV, KFold, train_test_split
from repro.ml.tree import DecisionTreeRegressor


class TestKFold:
    def test_partitions_exactly_once(self):
        seen = np.zeros(103, dtype=int)
        for train, test in KFold(5).split(103):
            seen[test] += 1
            assert np.intersect1d(train, test).size == 0
        assert (seen == 1).all()

    def test_unshuffled_is_contiguous(self):
        folds = list(KFold(2, shuffle=False).split(10))
        assert folds[0][1].tolist() == [0, 1, 2, 3, 4]

    def test_deterministic_shuffle(self):
        a = [t.tolist() for _, t in KFold(3, random_state=1).split(30)]
        b = [t.tolist() for _, t in KFold(3, random_state=1).split(30)]
        assert a == b

    def test_too_few_samples_rejected(self):
        with pytest.raises(InvalidConfiguration):
            list(KFold(5).split(3))

    def test_bad_n_splits_rejected(self):
        with pytest.raises(InvalidConfiguration):
            KFold(1)


class TestTrainTestSplit:
    def test_sizes(self, rng):
        x = rng.standard_normal((100, 3))
        y = rng.standard_normal(100)
        xtr, xte, ytr, yte = train_test_split(x, y, 0.25, 0)
        assert xte.shape[0] == 25 and xtr.shape[0] == 75
        assert ytr.shape[0] == 75 and yte.shape[0] == 25

    def test_rows_stay_paired(self, rng):
        x = np.arange(50, dtype=float)[:, None]
        y = np.arange(50, dtype=float) * 2
        xtr, xte, ytr, yte = train_test_split(x, y, 0.2, 3)
        assert np.allclose(xtr[:, 0] * 2, ytr)
        assert np.allclose(xte[:, 0] * 2, yte)

    def test_bad_fraction_rejected(self, rng):
        x = rng.standard_normal((10, 2))
        y = rng.standard_normal(10)
        with pytest.raises(InvalidConfiguration):
            train_test_split(x, y, 0.0)
        with pytest.raises(InvalidConfiguration):
            train_test_split(x, y, 1.0)

    def test_mismatched_rows_rejected(self, rng):
        with pytest.raises(InvalidConfiguration):
            train_test_split(np.zeros((5, 1)), np.zeros(4))


class TestGridSearch:
    def test_finds_better_depth(self, rng):
        x = rng.uniform(0, 1, (150, 2))
        y = np.sin(6 * x[:, 0])
        search = GridSearchCV(
            DecisionTreeRegressor, {"max_depth": [1, 8]}, n_splits=3
        )
        result = search.search(x, y)
        assert result.best_params == {"max_depth": 8}
        assert len(result.all_scores) == 2

    def test_scores_are_cv_means(self, rng):
        x = rng.uniform(0, 1, (60, 1))
        y = x[:, 0]
        search = GridSearchCV(
            DecisionTreeRegressor, {"max_depth": [3]}, n_splits=3
        )
        result = search.search(x, y)
        assert result.best_score >= 0.0

    def test_empty_grid_rejected(self):
        with pytest.raises(InvalidConfiguration):
            GridSearchCV(DecisionTreeRegressor, {})
