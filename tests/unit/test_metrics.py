"""Unit tests for ML metrics (Pearson, Formula 5, regression scores)."""

import numpy as np
import pytest

from repro.errors import InvalidConfiguration
from repro.ml.metrics import (
    estimation_error,
    mean_absolute_error,
    mean_estimation_error,
    pearson_correlation,
    r2_score,
    root_mean_squared_error,
)


class TestPearson:
    def test_perfect_positive(self):
        a = np.arange(50.0)
        assert pearson_correlation(a, 3 * a + 2) == pytest.approx(1.0)

    def test_perfect_negative(self):
        a = np.arange(50.0)
        assert pearson_correlation(a, -a) == pytest.approx(-1.0)

    def test_independent_near_zero(self, rng):
        a = rng.standard_normal(5000)
        b = rng.standard_normal(5000)
        assert abs(pearson_correlation(a, b)) < 0.1

    def test_constant_input_returns_zero(self):
        assert pearson_correlation(np.ones(10), np.arange(10.0)) == 0.0

    def test_matches_numpy(self, rng):
        a = rng.standard_normal(200)
        b = a + 0.5 * rng.standard_normal(200)
        assert pearson_correlation(a, b) == pytest.approx(
            np.corrcoef(a, b)[0, 1]
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(InvalidConfiguration):
            pearson_correlation(np.zeros(3), np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(InvalidConfiguration):
            pearson_correlation(np.zeros(0), np.zeros(0))


class TestEstimationError:
    def test_formula_five(self):
        assert estimation_error(100.0, 92.0) == pytest.approx(0.08)
        assert estimation_error(100.0, 108.0) == pytest.approx(0.08)

    def test_exact_match_is_zero(self):
        assert estimation_error(40.0, 40.0) == 0.0

    def test_nonpositive_target_rejected(self):
        with pytest.raises(InvalidConfiguration):
            estimation_error(0.0, 5.0)

    def test_mean_over_pairs(self):
        t = np.array([10.0, 20.0])
        m = np.array([9.0, 22.0])
        assert mean_estimation_error(t, m) == pytest.approx((0.1 + 0.1) / 2)

    def test_mean_rejects_nonpositive_targets(self):
        with pytest.raises(InvalidConfiguration):
            mean_estimation_error(np.array([0.0, 1.0]), np.array([1.0, 1.0]))


class TestRegressionScores:
    def test_mae(self):
        assert mean_absolute_error(
            np.array([1.0, 2.0]), np.array([2.0, 0.0])
        ) == pytest.approx(1.5)

    def test_rmse(self):
        assert root_mean_squared_error(
            np.array([0.0, 0.0]), np.array([3.0, 4.0])
        ) == pytest.approx(np.sqrt(12.5))

    def test_r2_perfect(self):
        y = np.arange(10.0)
        assert r2_score(y, y) == 1.0

    def test_r2_mean_predictor_is_zero(self):
        y = np.arange(10.0)
        assert r2_score(y, np.full(10, y.mean())) == pytest.approx(0.0)

    def test_r2_constant_truth(self):
        assert r2_score(np.ones(5), np.ones(5)) == 1.0
        assert r2_score(np.ones(5), np.zeros(5)) == 0.0
