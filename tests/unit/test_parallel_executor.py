"""Executor and shared-memory transport unit tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidConfiguration
from repro.parallel import (
    ParallelExecutor,
    SharedNDArray,
    available_cpus,
    derive_seeds,
    resolve_n_jobs,
)

pytestmark = pytest.mark.parallel


def _scale_task(task, arrays, context):
    return float(arrays["x"][task] * context)


def _index_task(task, arrays, context):  # noqa: ARG001
    return task


class TestResolveNJobs:
    def test_none_and_zero_mean_all_cpus(self):
        assert resolve_n_jobs(None) == available_cpus()
        assert resolve_n_jobs(0) == available_cpus()

    def test_positive_is_literal(self):
        assert resolve_n_jobs(3) == 3

    def test_negative_counts_back_joblib_style(self):
        cpus = available_cpus()
        assert resolve_n_jobs(-1) == cpus
        assert resolve_n_jobs(-cpus - 5) == 1  # floors at one worker


class TestDeriveSeeds:
    def test_deterministic_and_distinct(self):
        a = derive_seeds(42, 8)
        b = derive_seeds(42, 8)
        assert a == b
        assert len(set(a)) == 8

    def test_independent_of_task_count_prefix(self):
        # SeedSequence spawning: the first k seeds don't change when
        # more tasks are requested.
        assert derive_seeds(7, 3) == derive_seeds(7, 6)[:3]

    def test_rejects_negative_count(self):
        with pytest.raises(InvalidConfiguration):
            derive_seeds(0, -1)


class TestParallelExecutor:
    def test_rejects_unknown_backend(self):
        with pytest.raises(InvalidConfiguration):
            ParallelExecutor(backend="mpi")

    def test_single_job_collapses_to_serial(self):
        assert ParallelExecutor(n_jobs=1, backend="process").backend == "serial"
        assert ParallelExecutor(n_jobs=1, backend="auto").backend == "serial"

    def test_empty_tasks(self):
        assert ParallelExecutor(n_jobs=2).map(_index_task, []) == []

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_map_preserves_task_order(self, backend):
        executor = ParallelExecutor(n_jobs=4, backend=backend)
        tasks = list(range(23))
        assert executor.map(_index_task, tasks) == tasks

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_shared_arrays_and_context_reach_workers(self, backend):
        x = np.arange(10, dtype=np.float64)
        executor = ParallelExecutor(n_jobs=2, backend=backend)
        out = executor.map(
            _scale_task, list(range(10)), shared={"x": x}, context=3.0
        )
        assert out == [float(v) * 3.0 for v in x]


class TestSharedNDArray:
    def test_roundtrip_preserves_contents(self):
        array = np.random.default_rng(0).normal(size=(7, 5)).astype(np.float32)
        owner = SharedNDArray.from_array(array)
        try:
            attached = SharedNDArray.attach(owner.descriptor)
            np.testing.assert_array_equal(attached.asarray(), array)
            attached.close()
        finally:
            owner.close()
            owner.unlink()

    def test_closed_handle_refuses_views(self):
        owner = SharedNDArray.from_array(np.zeros(3))
        owner.close()
        owner.unlink()
        with pytest.raises(ValueError):
            owner.asarray()

    def test_context_manager_cleans_up(self):
        with SharedNDArray.from_array(np.ones(4)) as owner:
            name = owner.descriptor.name
            np.testing.assert_array_equal(owner.asarray(), np.ones(4))
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
