"""Unit tests for the ZFP-like block-transform compressor."""

import numpy as np
import pytest

from repro.compressors.zfp import (
    ZFPCompressor,
    _coeff_groups,
    _forward_lift,
    _from_blocks,
    _inverse_lift,
    _to_blocks,
    _unzigzag,
    _zigzag,
)
from repro.errors import InvalidConfiguration


class TestBlockLayout:
    @pytest.mark.parametrize("shape", [(8,), (8, 12), (4, 8, 12), (4, 4, 8, 8)])
    def test_to_from_blocks_roundtrip(self, rng, shape):
        data = rng.standard_normal(shape)
        blocks = _to_blocks(data)
        assert blocks.shape == (data.size // 4 ** len(shape),) + (4,) * len(shape)
        assert np.array_equal(_from_blocks(blocks, shape), data)


class TestLifting:
    @pytest.mark.parametrize("ndim", [1, 2, 3, 4])
    def test_integer_invertibility(self, rng, ndim):
        blocks = rng.integers(-(2**30), 2**30, (50,) + (4,) * ndim)
        assert np.array_equal(_inverse_lift(_forward_lift(blocks)), blocks)

    def test_constant_block_concentrates_energy(self):
        blocks = np.full((1, 4, 4, 4), 1000, dtype=np.int64)
        coeffs = _forward_lift(blocks).reshape(-1)
        assert coeffs[0] == 1000
        assert np.count_nonzero(coeffs[1:]) == 0

    def test_growth_bounded(self, rng):
        blocks = rng.integers(-(2**30), 2**30, (200, 4, 4, 4))
        coeffs = _forward_lift(blocks)
        assert np.abs(coeffs).max() < 2**34


class TestZigzag:
    def test_roundtrip(self, rng):
        values = rng.integers(-(2**40), 2**40, 1000)
        assert np.array_equal(_unzigzag(_zigzag(values)), values)

    def test_small_magnitudes_stay_small(self):
        assert _zigzag(np.array([0, -1, 1, -2, 2])).tolist() == [0, 1, 2, 3, 4]


class TestGroups:
    def test_3d_group_sizes(self):
        groups = _coeff_groups(3)
        assert groups.size == 64
        assert (groups == 0).sum() == 1  # DC
        assert (groups == 1).sum() == 7
        assert (groups == 2).sum() == 56


class TestAccuracyMode:
    @pytest.mark.parametrize("eb", [1e-4, 1e-3, 1e-2, 1e-1])
    def test_error_bound_respected(self, smooth_field3d, eb):
        comp = ZFPCompressor()
        recon, blob = comp.roundtrip(smooth_field3d, eb)
        comp.verify(smooth_field3d, recon, blob.config)

    @pytest.mark.parametrize("shape", [(5,), (9, 7), (10, 6, 5), (3, 4, 5, 6)])
    def test_nonmultiple_of_four_shapes(self, rng, shape):
        comp = ZFPCompressor()
        data = rng.standard_normal(shape).cumsum(axis=-1)
        recon, blob = comp.roundtrip(data, 0.02)
        comp.verify(data, recon, blob.config)

    def test_zero_field(self):
        comp = ZFPCompressor()
        data = np.zeros((8, 8, 8))
        recon, blob = comp.roundtrip(data, 0.01)
        assert np.array_equal(recon, data)
        assert blob.compression_ratio > 50

    def test_stairstep_curve(self, smooth_field3d):
        """CR as a function of eb moves in flat steps (Fig. 2's insight)."""
        comp = ZFPCompressor()
        bounds = np.logspace(-4, -1, 25)
        ratios = [comp.compression_ratio(smooth_field3d, b) for b in bounds]
        diffs = np.diff(ratios)
        flat = np.sum(np.abs(diffs) < 1e-3 * np.max(ratios))
        assert flat >= 5, "expected flat steps in the CR-vs-eb curve"

    def test_ratio_monotone_in_bound(self, smooth_field3d):
        comp = ZFPCompressor()
        ratios = [
            comp.compression_ratio(smooth_field3d, eb)
            for eb in (1e-4, 1e-2, 1e-1)
        ]
        assert ratios[0] <= ratios[1] <= ratios[2] + 1e-9


class TestRateMode:
    def test_rate_controls_size(self, smooth_field3d):
        comp = ZFPCompressor(mode="rate")
        blob8 = comp.compress(smooth_field3d, 8)
        blob16 = comp.compress(smooth_field3d, 16)
        assert blob8.nbytes < blob16.nbytes
        # Rate 8 on 32-bit data -> CR near 4 (plus header overhead).
        assert 2.5 < blob8.compression_ratio < 8.0

    def test_rate_mode_worse_ratio_at_same_distortion(self, smooth_field3d):
        """The paper's Sec. II claim: fixed-rate pays ~2x CR."""
        accuracy = ZFPCompressor()
        rate = ZFPCompressor(mode="rate")
        recon_a, blob_a = accuracy.roundtrip(smooth_field3d, 1e-2)
        err_a = np.max(np.abs(smooth_field3d.astype(np.float64) - recon_a))
        # Find the cheapest rate achieving the same max error.
        for bits in range(1, 31):
            recon_r, blob_r = rate.roundtrip(smooth_field3d, bits)
            err_r = np.max(np.abs(smooth_field3d.astype(np.float64) - recon_r))
            if err_r <= err_a:
                break
        assert blob_r.compression_ratio < blob_a.compression_ratio

    def test_rate_out_of_range_rejected(self, smooth_field3d):
        comp = ZFPCompressor(mode="rate")
        with pytest.raises(InvalidConfiguration):
            comp.compress(smooth_field3d, 0)
        with pytest.raises(InvalidConfiguration):
            comp.compress(smooth_field3d, 64)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            ZFPCompressor(mode="turbo")
