"""Unit tests for the experiment corpus, tables and config modules."""

import numpy as np
import pytest

from repro.config import FXRZConfig
from repro.errors import DatasetError
from repro.experiments.corpus import cross_scope_corpus, training_arrays
from repro.experiments.corpus import held_out_snapshots
from repro.experiments.tables import render_table


class TestConfig:
    def test_defaults_match_paper(self):
        config = FXRZConfig()
        assert config.sampling_stride == 4
        assert config.block_size == 4
        assert config.lam == 0.15
        assert config.stationary_points == 25
        assert config.use_adjustment is True

    def test_validation(self):
        with pytest.raises(ValueError):
            FXRZConfig(sampling_stride=0)
        with pytest.raises(ValueError):
            FXRZConfig(block_size=1)
        with pytest.raises(ValueError):
            FXRZConfig(lam=1.5)
        with pytest.raises(ValueError):
            FXRZConfig(stationary_points=1)
        with pytest.raises(ValueError):
            FXRZConfig(augmented_samples=0)

    def test_hashable_for_cache_keys(self):
        assert hash(FXRZConfig()) == hash(FXRZConfig())


class TestCorpus:
    def test_training_arrays_per_field(self):
        arrays = training_arrays("hurricane", "TC")
        assert len(arrays) == 6
        assert all(isinstance(a, np.ndarray) for a in arrays)

    def test_training_arrays_all_fields(self):
        arrays = training_arrays("hurricane")
        assert len(arrays) == 12  # TC + QCLOUD, 6 steps each

    def test_held_out_snapshots(self):
        snaps = held_out_snapshots("rtm")
        assert len(snaps) == 2
        assert all(s.application == "rtm" for s in snaps)

    def test_unknown_field_rejected(self):
        with pytest.raises(DatasetError):
            training_arrays("nyx", "entropy")
        with pytest.raises(DatasetError):
            held_out_snapshots("nyx", "entropy")

    def test_cross_scope_corpus(self):
        train, test = cross_scope_corpus()
        assert len(train) >= 8  # snapshots from all four applications
        assert all(s.application == "rtm" for s in test)


class TestTables:
    def test_alignment(self):
        table = render_table(
            ["name", "value"], [["a", 1], ["long-name", 22]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1, "all rows padded to equal width"

    def test_empty_rows(self):
        table = render_table(["a"], [])
        assert "a" in table
