"""Unit tests for the canonical Huffman codec."""

import numpy as np
import pytest

from repro.encoding.huffman import (
    ChunkedHuffmanCodec,
    HuffmanCodec,
    _canonical_codes,
    _huffman_code_lengths,
    _limited_code_lengths,
    symbol_table,
)
from repro.errors import CorruptStreamError, EncodingError


@pytest.fixture()
def codec():
    return HuffmanCodec()


class TestCodeConstruction:
    def test_two_symbols_get_one_bit_each(self):
        lengths = _huffman_code_lengths(np.array([5, 3]))
        assert lengths.tolist() == [1, 1]

    def test_kraft_inequality_holds(self):
        freqs = np.array([100, 50, 20, 10, 5, 2, 1, 1])
        lengths = _huffman_code_lengths(freqs)
        assert np.sum(0.5 ** lengths.astype(float)) <= 1.0 + 1e-12

    def test_more_frequent_never_longer(self):
        freqs = np.array([1000, 100, 10, 1])
        lengths = _huffman_code_lengths(freqs)
        assert (np.diff(lengths) >= 0).all()

    def test_length_limiting_caps_at_16(self):
        # Fibonacci-like frequencies force deep Huffman trees.
        freqs = np.ones(40, dtype=np.int64)
        a, b = 1, 1
        for i in range(40):
            freqs[i] = a
            a, b = b, a + b
        lengths = _limited_code_lengths(freqs)
        assert lengths.max() <= 16

    def test_canonical_codes_are_prefix_free(self):
        lengths = np.array([2, 2, 3, 3, 3, 4, 4])
        codes = _canonical_codes(lengths)
        entries = sorted(zip(lengths.tolist(), codes.tolist()))
        for i, (la, ca) in enumerate(entries):
            for lb, cb in entries[i + 1 :]:
                assert (cb >> (lb - la)) != ca, "prefix collision"


class TestRoundtrip:
    def test_skewed_symbols(self, codec, rng):
        symbols = rng.geometric(0.25, 50_000).astype(np.int64) - 3
        assert np.array_equal(codec.decode(codec.encode(symbols)), symbols)

    def test_uniform_symbols(self, codec, rng):
        symbols = rng.integers(-500, 500, 20_000)
        assert np.array_equal(codec.decode(codec.encode(symbols)), symbols)

    def test_single_symbol_stream(self, codec):
        symbols = np.full(999, -42, dtype=np.int64)
        blob = codec.encode(symbols)
        assert len(blob) < 20, "degenerate stream should be tiny"
        assert np.array_equal(codec.decode(blob), symbols)

    def test_empty_stream(self, codec):
        assert codec.decode(codec.encode(np.zeros(0, np.int64))).size == 0

    def test_two_distinct_symbols(self, codec):
        symbols = np.array([7, 7, 7, -1, 7, -1], dtype=np.int64)
        assert np.array_equal(codec.decode(codec.encode(symbols)), symbols)

    def test_large_magnitude_symbols(self, codec):
        symbols = np.array([2**40, -(2**40), 0, 2**40], dtype=np.int64)
        assert np.array_equal(codec.decode(codec.encode(symbols)), symbols)

    def test_multidimensional_input_flattened(self, codec, rng):
        symbols = rng.integers(0, 5, (10, 10))
        decoded = codec.decode(codec.encode(symbols))
        assert np.array_equal(decoded, symbols.ravel())


class TestCompression:
    def test_skewed_stream_compresses(self, codec, rng):
        symbols = rng.geometric(0.9, 100_000).astype(np.int64)
        blob = codec.encode(symbols)
        assert len(blob) < symbols.size  # far below 8 bytes/symbol

    def test_entropy_near_optimal(self, codec, rng):
        p = np.array([0.7, 0.15, 0.1, 0.05])
        symbols = rng.choice(4, size=50_000, p=p).astype(np.int64)
        blob = codec.encode(symbols)
        entropy_bits = -np.sum(p * np.log2(p)) * symbols.size
        assert len(blob) * 8 < entropy_bits * 1.25 + 512


class TestCorruption:
    def test_truncated_stream_raises(self, codec, rng):
        symbols = rng.integers(0, 100, 1000)
        blob = codec.encode(symbols)
        with pytest.raises(CorruptStreamError):
            codec.decode(blob[: len(blob) // 2])

    def test_empty_blob_raises(self, codec):
        with pytest.raises(CorruptStreamError):
            codec.decode(b"")


class TestSymbolTable:
    def test_matches_np_unique(self, rng):
        symbols = rng.integers(-40, 40, 10_000)
        alphabet, inverse, counts = symbol_table(symbols)
        expected_alpha, expected_inv = np.unique(symbols, return_inverse=True)
        np.testing.assert_array_equal(alphabet, expected_alpha)
        np.testing.assert_array_equal(inverse, expected_inv.ravel())
        np.testing.assert_array_equal(
            counts, np.bincount(expected_inv.ravel())
        )

    def test_wide_span_falls_back_to_unique(self):
        # Span >> 2**22 forces the sort-based path; results must agree.
        symbols = np.array([2**40, -(2**40), 0, 2**40], dtype=np.int64)
        alphabet, inverse, counts = symbol_table(symbols)
        assert alphabet.tolist() == [-(2**40), 0, 2**40]
        assert inverse.tolist() == [2, 0, 1, 2]
        assert counts.tolist() == [1, 1, 2]

    def test_empty(self):
        alphabet, inverse, counts = symbol_table(np.zeros(0, np.int64))
        assert alphabet.size == inverse.size == counts.size == 0

    def test_reconstructs_stream(self, rng):
        symbols = rng.geometric(0.3, 5000).astype(np.int64) - 7
        alphabet, inverse, _ = symbol_table(symbols)
        np.testing.assert_array_equal(alphabet[inverse], symbols)


class TestChunkedHuffman:
    @pytest.fixture()
    def chunked(self):
        return ChunkedHuffmanCodec()

    def test_skewed_roundtrip(self, chunked, rng):
        symbols = rng.geometric(0.25, 50_000).astype(np.int64) - 3
        assert np.array_equal(chunked.decode(chunked.encode(symbols)), symbols)

    def test_uniform_roundtrip(self, chunked, rng):
        symbols = rng.integers(-500, 500, 20_000)
        assert np.array_equal(chunked.decode(chunked.encode(symbols)), symbols)

    @pytest.mark.parametrize("chunk_size", [1, 2, 7, 256, 4096])
    def test_roundtrip_across_chunk_sizes(self, rng, chunk_size):
        codec = ChunkedHuffmanCodec(chunk_size=chunk_size)
        symbols = rng.geometric(0.4, 3000).astype(np.int64)
        assert np.array_equal(codec.decode(codec.encode(symbols)), symbols)

    @pytest.mark.parametrize("n", [1, 255, 256, 257, 512, 513])
    def test_partial_final_chunk_boundaries(self, chunked, rng, n):
        symbols = rng.integers(0, 9, n)
        assert np.array_equal(chunked.decode(chunked.encode(symbols)), symbols)

    def test_single_symbol_stream_is_tiny(self, chunked):
        symbols = np.full(999, -42, dtype=np.int64)
        blob = chunked.encode(symbols)
        assert len(blob) < 20
        assert np.array_equal(chunked.decode(blob), symbols)

    def test_empty_stream(self, chunked):
        assert chunked.decode(chunked.encode(np.zeros(0, np.int64))).size == 0

    def test_two_distinct_symbols(self, chunked):
        symbols = np.array([7, 7, 7, -1, 7, -1], dtype=np.int64)
        assert np.array_equal(chunked.decode(chunked.encode(symbols)), symbols)

    def test_compresses_skewed_stream(self, chunked, rng):
        symbols = rng.geometric(0.9, 100_000).astype(np.int64)
        assert len(chunked.encode(symbols)) < symbols.size

    def test_overhead_vs_plain_huffman_is_bounded(self, rng):
        # The chunk table + per-chunk byte alignment should cost only a
        # few percent at the default chunk size.
        symbols = rng.geometric(0.5, 100_000).astype(np.int64)
        plain = len(HuffmanCodec().encode(symbols))
        chunked = len(ChunkedHuffmanCodec().encode(symbols))
        assert chunked < plain * 1.10

    def test_truncated_stream_raises(self, chunked, rng):
        symbols = rng.integers(0, 100, 1000)
        blob = chunked.encode(symbols)
        with pytest.raises(CorruptStreamError):
            chunked.decode(blob[: len(blob) // 2])

    def test_empty_blob_raises(self, chunked):
        with pytest.raises(CorruptStreamError):
            chunked.decode(b"")

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(EncodingError):
            ChunkedHuffmanCodec(chunk_size=0)

    def test_multidimensional_input_flattened(self, chunked, rng):
        symbols = rng.integers(0, 5, (10, 10))
        decoded = chunked.decode(chunked.encode(symbols))
        assert np.array_equal(decoded, symbols.ravel())
