"""Unit tests for the canonical Huffman codec."""

import numpy as np
import pytest

from repro.encoding.huffman import (
    HuffmanCodec,
    _canonical_codes,
    _huffman_code_lengths,
    _limited_code_lengths,
)
from repro.errors import CorruptStreamError


@pytest.fixture()
def codec():
    return HuffmanCodec()


class TestCodeConstruction:
    def test_two_symbols_get_one_bit_each(self):
        lengths = _huffman_code_lengths(np.array([5, 3]))
        assert lengths.tolist() == [1, 1]

    def test_kraft_inequality_holds(self):
        freqs = np.array([100, 50, 20, 10, 5, 2, 1, 1])
        lengths = _huffman_code_lengths(freqs)
        assert np.sum(0.5 ** lengths.astype(float)) <= 1.0 + 1e-12

    def test_more_frequent_never_longer(self):
        freqs = np.array([1000, 100, 10, 1])
        lengths = _huffman_code_lengths(freqs)
        assert (np.diff(lengths) >= 0).all()

    def test_length_limiting_caps_at_16(self):
        # Fibonacci-like frequencies force deep Huffman trees.
        freqs = np.ones(40, dtype=np.int64)
        a, b = 1, 1
        for i in range(40):
            freqs[i] = a
            a, b = b, a + b
        lengths = _limited_code_lengths(freqs)
        assert lengths.max() <= 16

    def test_canonical_codes_are_prefix_free(self):
        lengths = np.array([2, 2, 3, 3, 3, 4, 4])
        codes = _canonical_codes(lengths)
        entries = sorted(zip(lengths.tolist(), codes.tolist()))
        for i, (la, ca) in enumerate(entries):
            for lb, cb in entries[i + 1 :]:
                assert (cb >> (lb - la)) != ca, "prefix collision"


class TestRoundtrip:
    def test_skewed_symbols(self, codec, rng):
        symbols = rng.geometric(0.25, 50_000).astype(np.int64) - 3
        assert np.array_equal(codec.decode(codec.encode(symbols)), symbols)

    def test_uniform_symbols(self, codec, rng):
        symbols = rng.integers(-500, 500, 20_000)
        assert np.array_equal(codec.decode(codec.encode(symbols)), symbols)

    def test_single_symbol_stream(self, codec):
        symbols = np.full(999, -42, dtype=np.int64)
        blob = codec.encode(symbols)
        assert len(blob) < 20, "degenerate stream should be tiny"
        assert np.array_equal(codec.decode(blob), symbols)

    def test_empty_stream(self, codec):
        assert codec.decode(codec.encode(np.zeros(0, np.int64))).size == 0

    def test_two_distinct_symbols(self, codec):
        symbols = np.array([7, 7, 7, -1, 7, -1], dtype=np.int64)
        assert np.array_equal(codec.decode(codec.encode(symbols)), symbols)

    def test_large_magnitude_symbols(self, codec):
        symbols = np.array([2**40, -(2**40), 0, 2**40], dtype=np.int64)
        assert np.array_equal(codec.decode(codec.encode(symbols)), symbols)

    def test_multidimensional_input_flattened(self, codec, rng):
        symbols = rng.integers(0, 5, (10, 10))
        decoded = codec.decode(codec.encode(symbols))
        assert np.array_equal(decoded, symbols.ravel())


class TestCompression:
    def test_skewed_stream_compresses(self, codec, rng):
        symbols = rng.geometric(0.9, 100_000).astype(np.int64)
        blob = codec.encode(symbols)
        assert len(blob) < symbols.size  # far below 8 bytes/symbol

    def test_entropy_near_optimal(self, codec, rng):
        p = np.array([0.7, 0.15, 0.1, 0.05])
        symbols = rng.choice(4, size=50_000, p=p).astype(np.int64)
        blob = codec.encode(symbols)
        entropy_bits = -np.sum(p * np.log2(p)) * symbols.size
        assert len(blob) * 8 < entropy_bits * 1.25 + 512


class TestCorruption:
    def test_truncated_stream_raises(self, codec, rng):
        symbols = rng.integers(0, 100, 1000)
        blob = codec.encode(symbols)
        with pytest.raises(CorruptStreamError):
            codec.decode(blob[: len(blob) // 2])

    def test_empty_blob_raises(self, codec):
        with pytest.raises(CorruptStreamError):
            codec.decode(b"")
