"""Unit tests for guarded inference and its supporting pieces."""

import math

import numpy as np
import pytest

import repro
from repro.compressors import get_compressor
from repro.errors import (
    FallbackExhaustedError,
    InvalidConfiguration,
    OutOfDistributionError,
)
from repro.robustness import (
    FeatureEnvelope,
    GuardedInferenceEngine,
    RetryPolicy,
    backoff_schedule,
    validate_field,
)
from repro.robustness.confidence import ensemble_spread, score_confidence

from tests.conftest import small_forest_factory

pytestmark = pytest.mark.robustness


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(2)
    lin = np.linspace(0, 4 * np.pi, 20)
    x, y, z = np.meshgrid(lin, lin, lin, indexing="ij")
    train = [
        (np.sin(x + 0.3 * i) * np.cos(y) + 0.03 * rng.standard_normal((20,) * 3))
        .astype(np.float32)
        for i in range(3)
    ]
    config = repro.FXRZConfig(stationary_points=8, augmented_samples=60)
    pipeline = repro.FXRZ(
        get_compressor("sz"), config=config, model_factory=small_forest_factory
    )
    pipeline.fit(train)
    return pipeline, train


class TestValidation:
    def test_clean_field_untouched(self):
        data = np.linspace(0, 1, 64).reshape(8, 8)
        report = validate_field(data)
        assert report.clean and not report.constant
        assert report.nonfinite_fraction == 0.0
        np.testing.assert_array_equal(report.data, data)

    def test_empty_rejected(self):
        with pytest.raises(InvalidConfiguration, match="empty"):
            validate_field(np.zeros(0))

    def test_all_nan_rejected(self):
        with pytest.raises(InvalidConfiguration, match="no finite"):
            validate_field(np.full((4, 4), np.nan))

    def test_mostly_nan_rejected(self):
        data = np.ones(100)
        data[:80] = np.nan
        with pytest.raises(InvalidConfiguration, match="non-finite"):
            validate_field(data)

    def test_nan_patched_with_median(self):
        data = np.array([1.0, 2.0, np.nan, 3.0])
        report = validate_field(data)
        assert "nan" in report.issues
        assert report.data[2] == pytest.approx(2.0)
        assert np.isfinite(report.data).all()

    def test_inf_patched_with_extremes(self):
        data = np.array([1.0, np.inf, -np.inf, 5.0])
        report = validate_field(data)
        assert "inf" in report.issues
        assert report.data[1] == pytest.approx(5.0)
        assert report.data[2] == pytest.approx(1.0)

    def test_constant_flagged(self):
        report = validate_field(np.full((4, 4), 3.0))
        assert report.constant and "constant" in report.issues


class TestFeatureEnvelope:
    def test_inside_and_outside(self):
        rows = np.array([[0.0, 10.0], [1.0, 20.0]])
        env = FeatureEnvelope(rows, margin=0.0)
        assert env.contains(np.array([0.5, 15.0]))
        assert not env.contains(np.array([2.0, 15.0]))
        assert env.violation(np.array([2.0, 15.0])) == pytest.approx(1.0)

    def test_margin_expands(self):
        rows = np.array([[0.0], [1.0]])
        assert FeatureEnvelope(rows, margin=0.5).contains(np.array([1.4]))
        assert not FeatureEnvelope(rows, margin=0.0).contains(np.array([1.4]))

    def test_dimension_mismatch_rejected(self):
        env = FeatureEnvelope(np.zeros((2, 3)))
        with pytest.raises(InvalidConfiguration):
            env.violation(np.zeros(2))


class TestConfidence:
    def test_spread_of_constant_model_is_zero(self, fitted):
        pipeline, train = fitted
        features = np.concatenate(
            (pipeline._training.records[0].features, [5.0])
        )
        std = ensemble_spread(pipeline.model, features)
        assert math.isfinite(std) and std >= 0.0

    def test_no_ensemble_is_neutral(self):
        class Point:
            def predict(self, rows):
                return np.zeros(len(rows))

        env = FeatureEnvelope(np.array([[0.0], [1.0]]))
        report = score_confidence(Point(), env, np.array([0.5]))
        assert math.isnan(report.tree_std)
        assert report.spread_score == 1.0

    def test_ood_query_scores_low(self, fitted):
        pipeline, _ = fitted
        engine = GuardedInferenceEngine(pipeline)
        inside = engine._envelope_rows()[0]
        report_in = score_confidence(pipeline.model, engine.envelope, inside)
        far = inside * 0 + 1e9
        report_out = score_confidence(pipeline.model, engine.envelope, far)
        assert report_out.envelope_score < 0.05 < report_in.envelope_score


class TestBackoffSchedule:
    def test_deterministic_under_fixed_seed(self):
        policy = RetryPolicy(max_attempts=6, base_delay=0.5, jitter=0.2)
        a = backoff_schedule(policy, 5, np.random.default_rng(42))
        b = backoff_schedule(policy, 5, np.random.default_rng(42))
        np.testing.assert_array_equal(a, b)

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(
            max_attempts=8, base_delay=1.0, backoff=2.0, max_delay=5.0, jitter=0.0
        )
        delays = backoff_schedule(policy, 6)
        np.testing.assert_allclose(delays, [1.0, 2.0, 4.0, 5.0, 5.0, 5.0])

    def test_jitter_bounded(self):
        policy = RetryPolicy(max_attempts=4, base_delay=1.0, backoff=1.0, jitter=0.25)
        delays = backoff_schedule(policy, 100, np.random.default_rng(0))
        assert (delays >= 0.75).all() and (delays <= 1.25).all()

    def test_invalid_policy_rejected(self):
        with pytest.raises(InvalidConfiguration):
            RetryPolicy(max_attempts=0)
        with pytest.raises(InvalidConfiguration):
            RetryPolicy(backoff=0.5)


class TestGuardedLadder:
    def test_model_tier_on_clean_data(self, fitted):
        pipeline, train = fitted
        estimate = pipeline.guarded().estimate(train[0], 6.0)
        assert estimate.tier == "model"
        assert estimate.confidence > 0.5
        assert estimate.fallback_reason == ""
        assert math.isfinite(estimate.config) and estimate.config > 0

    def test_matches_unguarded_on_model_tier(self, fitted):
        pipeline, train = fitted
        guarded = pipeline.guarded().estimate(train[0], 6.0)
        plain = pipeline.estimate_config(train[0], 6.0)
        assert guarded.config == pytest.approx(plain.config)

    def test_nan_field_degrades_to_curve(self, fitted):
        pipeline, train = fitted
        polluted = train[0].astype(np.float64).copy()
        polluted[::4, ::4, ::4] = np.nan
        estimate = pipeline.guarded().estimate(polluted, 6.0)
        assert estimate.tier == "curve"
        assert estimate.confidence <= 0.25
        assert "nan" in estimate.fallback_reason
        assert math.isfinite(estimate.config) and estimate.config > 0

    def test_out_of_range_target_reaches_fraz(self, fitted):
        pipeline, train = fitted
        estimate = pipeline.guarded().estimate(train[0], 1e5)
        assert estimate.tier == "fraz"
        assert math.isfinite(estimate.config) and estimate.config > 0

    def test_fallback_none_raises_ood(self, fitted):
        pipeline, _ = fitted
        rng = np.random.default_rng(5)
        alien = 1e6 * np.cumsum(rng.standard_normal((16,) * 3), axis=0)
        with pytest.raises(OutOfDistributionError):
            pipeline.guarded(fallback="none").estimate(alien, 6.0)

    def test_fallback_curve_exhausts_without_fraz(self, fitted):
        pipeline, train = fitted
        # A target far past every training curve: curve tier declines,
        # and without the FRaZ rung the ladder is exhausted.
        with pytest.raises(FallbackExhaustedError):
            pipeline.guarded(
                fallback="curve", min_confidence=1.0
            ).estimate(train[0], 1e5)

    def test_never_returns_bad_bound(self, fitted):
        pipeline, train = fitted
        engine = pipeline.guarded()
        polluted = train[0].astype(np.float64).copy()
        polluted[0, 0, 0] = np.inf
        for target in (1.5, 6.0, 40.0):
            estimate = engine.estimate(polluted, target)
            assert math.isfinite(estimate.config)
            assert estimate.config > 0
            assert estimate.tier in ("model", "curve", "fraz")

    def test_degenerate_feature_range_transfers_unscaled(self, fitted):
        """NaNs aligned with the sampling lattice zero out the sampled
        value range; the curve tier must not rescale the bound by the
        floor ratio (which would yield a ~1e-33 bound)."""
        pipeline, train = fitted
        stride = pipeline.config.sampling_stride
        polluted = train[0].astype(np.float64).copy()
        polluted[::stride, ::stride, ::stride] = np.nan
        estimate = pipeline.guarded().estimate(polluted, 6.0)
        assert estimate.tier == "curve"
        clean = pipeline.guarded().estimate(train[0], 6.0)
        assert estimate.config > 1e-6 * clean.config

    def test_invalid_targets_rejected(self, fitted):
        pipeline, train = fitted
        engine = pipeline.guarded()
        for bad in (0.0, -3.0, float("nan"), float("inf")):
            with pytest.raises(InvalidConfiguration):
                engine.estimate(train[0], bad)

    def test_unfitted_pipeline_rejected(self):
        pipeline = repro.FXRZ(get_compressor("sz"))
        with pytest.raises(repro.NotFittedError):
            GuardedInferenceEngine(pipeline)

    def test_bad_fallback_rejected(self, fitted):
        pipeline, _ = fitted
        with pytest.raises(InvalidConfiguration):
            GuardedInferenceEngine(pipeline, fallback="panic")
