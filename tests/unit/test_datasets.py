"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets.base import FieldSeries, FieldSnapshot
from repro.datasets.grf import gaussian_random_field, power_spectrum_noise
from repro.datasets.hurricane import generate_hurricane_field
from repro.datasets.nyx import generate_nyx_field
from repro.datasets.qmcpack import generate_qmcpack_field
from repro.datasets.rtm import RTMSimulator, generate_rtm_snapshots
from repro.errors import DatasetError


class TestBase:
    def test_snapshot_name(self):
        snap = FieldSnapshot("nyx", "temp", "t0", np.ones((2, 2)))
        assert snap.name == "nyx/temp@t0"
        assert snap.nbytes == 32

    def test_empty_snapshot_rejected(self):
        with pytest.raises(DatasetError):
            FieldSnapshot("a", "b", "c", np.zeros((0,)))

    def test_series_add_and_iterate(self):
        series = FieldSeries("nyx", "temp")
        series.add("t0", np.ones((2, 2)))
        series.add("t1", np.zeros((2, 2)))
        assert len(series) == 2
        assert [s.label for s in series] == ["t0", "t1"]
        assert series.name == "nyx/temp"


class TestGRF:
    def test_normalized_output(self):
        field = power_spectrum_noise((32, 32), alpha=3.0, seed=1)
        assert field.mean() == pytest.approx(0.0, abs=1e-10)
        assert field.std() == pytest.approx(1.0)

    def test_deterministic(self):
        a = power_spectrum_noise((16, 16), 2.0, seed=9)
        b = power_spectrum_noise((16, 16), 2.0, seed=9)
        assert np.array_equal(a, b)

    def test_seed_changes_field(self):
        a = power_spectrum_noise((16, 16), 2.0, seed=1)
        b = power_spectrum_noise((16, 16), 2.0, seed=2)
        assert not np.array_equal(a, b)

    def test_higher_alpha_is_smoother(self):
        rough = power_spectrum_noise((64, 64), 1.0, seed=3)
        smooth = power_spectrum_noise((64, 64), 4.0, seed=3)
        rough_grad = np.abs(np.diff(rough, axis=0)).mean()
        smooth_grad = np.abs(np.diff(smooth, axis=0)).mean()
        assert smooth_grad < rough_grad

    def test_mean_sigma_applied(self):
        field = gaussian_random_field((32, 32), sigma=2.5, mean=10.0, seed=0)
        assert field.mean() == pytest.approx(10.0)
        assert field.std() == pytest.approx(2.5)

    def test_tiny_shape_rejected(self):
        with pytest.raises(DatasetError):
            power_spectrum_noise((1, 8), 2.0, 0)


class TestNyx:
    def test_density_positive_with_unit_mean(self):
        rho = generate_nyx_field("baryon_density", shape=(24, 24, 24), seed=1)
        assert rho.dtype == np.float32
        assert (rho > 0).all()
        assert rho.mean() == pytest.approx(1.0, rel=1e-3)

    def test_dark_matter_heavier_tail(self):
        b = generate_nyx_field("baryon_density", shape=(32, 32, 32), seed=2)
        dm = generate_nyx_field("dark_matter_density", shape=(32, 32, 32), seed=2)
        assert dm.max() > b.max()

    def test_velocity_signed(self):
        v = generate_nyx_field("velocity_x", shape=(16, 16, 16), seed=0)
        assert v.min() < 0 < v.max()

    def test_timestep_growth_sharpens(self):
        early = generate_nyx_field("baryon_density", shape=(24,) * 3, timestep=0)
        late = generate_nyx_field("baryon_density", shape=(24,) * 3, timestep=5)
        assert late.std() > early.std()

    def test_unknown_field_rejected(self):
        with pytest.raises(DatasetError):
            generate_nyx_field("pressure")


class TestQMCPack:
    def test_shape_and_dtype(self):
        field = generate_qmcpack_field("spin0", n_orbitals=4, grid_shape=(12, 8, 8))
        assert field.shape == (4, 12, 8, 8)
        assert field.dtype == np.float32

    def test_spins_differ(self):
        s0 = generate_qmcpack_field("spin0", n_orbitals=3, grid_shape=(10, 8, 8))
        s1 = generate_qmcpack_field("spin1", n_orbitals=3, grid_shape=(10, 8, 8))
        assert not np.array_equal(s0, s1)

    def test_higher_orbitals_oscillate_more(self):
        field = generate_qmcpack_field("spin0", n_orbitals=10, grid_shape=(16, 12, 12))
        low = np.abs(np.diff(field[0], axis=0)).mean()
        high = np.abs(np.diff(field[9], axis=0)).mean()
        assert high > low

    def test_bad_args_rejected(self):
        with pytest.raises(DatasetError):
            generate_qmcpack_field("spin2")
        with pytest.raises(DatasetError):
            generate_qmcpack_field("spin0", n_orbitals=0)


class TestRTM:
    def test_wave_propagates_outward(self):
        sim = RTMSimulator(shape=(24, 24, 16), seed=0)
        sim.step(10)
        early_energy = float(np.abs(sim.field).sum())
        sim.step(20)
        late_energy = float(np.abs(sim.field).sum())
        assert late_energy > 0
        assert early_energy > 0
        # The wavefront spreads: nonzero support grows over time.
        sim2 = RTMSimulator(shape=(24, 24, 16), seed=0)
        sim2.step(5)
        support_early = np.count_nonzero(np.abs(sim2.field) > 1e-6)
        sim2.step(25)
        support_late = np.count_nonzero(np.abs(sim2.field) > 1e-6)
        assert support_late > support_early

    def test_snapshots_at_requested_steps(self):
        snaps = generate_rtm_snapshots((16, 16, 8), [5, 10, 20], seed=1)
        assert [t for t, _ in snaps] == [5, 10, 20]
        assert all(s.dtype == np.float32 for _, s in snaps)

    def test_deterministic(self):
        a = generate_rtm_snapshots((16, 16, 8), [10], seed=4)[0][1]
        b = generate_rtm_snapshots((16, 16, 8), [10], seed=4)[0][1]
        assert np.array_equal(a, b)

    def test_bad_args_rejected(self):
        with pytest.raises(DatasetError):
            RTMSimulator(shape=(4, 16, 16))
        with pytest.raises(DatasetError):
            generate_rtm_snapshots((16, 16, 8), [])
        with pytest.raises(DatasetError):
            generate_rtm_snapshots((16, 16, 8), [0])


class TestHurricane:
    def test_tc_has_large_range(self):
        tc = generate_hurricane_field("TC", timestep=10, shape=(8, 32, 32))
        assert np.ptp(tc) > 30

    def test_qcloud_mostly_zero(self):
        qc = generate_hurricane_field("QCLOUD", timestep=10, shape=(8, 32, 32))
        assert (qc == 0).mean() > 0.4
        assert (qc >= 0).all()

    def test_storm_moves_over_time(self):
        early = generate_hurricane_field("QCLOUD", timestep=5, shape=(8, 32, 32))
        late = generate_hurricane_field("QCLOUD", timestep=45, shape=(8, 32, 32))
        # Centroid of the cloud mass shifts with the storm track.
        def centroid(f):
            total = f.sum()
            ys, xs = np.meshgrid(range(32), range(32), indexing="ij")
            plane = f.sum(axis=0)
            return (
                float((plane * ys).sum() / total),
                float((plane * xs).sum() / total),
            )
        cy_e, cx_e = centroid(early)
        cy_l, cx_l = centroid(late)
        assert abs(cy_l - cy_e) + abs(cx_l - cx_e) > 3

    def test_bad_args_rejected(self):
        with pytest.raises(DatasetError):
            generate_hurricane_field("WIND", timestep=5)
        with pytest.raises(DatasetError):
            generate_hurricane_field("TC", timestep=0)
        with pytest.raises(DatasetError):
            generate_hurricane_field("TC", timestep=99)
