"""Unit tests for the FXRZ training and inference engines."""

import numpy as np
import pytest

from repro.compressors import get_compressor
from repro.config import FXRZConfig
from repro.core.inference import InferenceEngine
from repro.core.training import TrainingEngine
from repro.errors import InvalidConfiguration, NotFittedError


@pytest.fixture(scope="module")
def train_fields():
    rng = np.random.default_rng(5)
    lin = np.linspace(0, 4 * np.pi, 24)
    x, y, z = np.meshgrid(lin, lin, lin, indexing="ij")
    out = []
    for i in range(3):
        noise = rng.standard_normal((24, 24, 24))
        out.append(
            (np.sin(x + 0.3 * i) * np.cos(y) + (0.02 + 0.02 * i) * noise).astype(
                np.float32
            )
        )
    return out


class TestTrainingEngine:
    def test_accumulates_records_and_timing(self, train_fields, fast_config):
        engine = TrainingEngine(get_compressor("sz"), config=fast_config)
        for data in train_fields:
            engine.add_dataset(data)
        assert engine.report.n_datasets == 3
        assert engine.report.stationary_seconds > 0

    def test_training_matrix_shape(self, train_fields, fast_config):
        engine = TrainingEngine(get_compressor("sz"), config=fast_config)
        engine.add_dataset(train_fields[0])
        x, y = engine.build_training_matrix()
        assert x.shape == (fast_config.augmented_samples, 6)
        assert y.shape == (fast_config.augmented_samples,)

    def test_log_target_for_abs_compressor(self, train_fields, fast_config):
        engine = TrainingEngine(get_compressor("sz"), config=fast_config)
        engine.add_dataset(train_fields[0])
        _, y = engine.build_training_matrix()
        # log10 of error bounds in (1e-6*range, 0.1*range): negative values.
        assert (y < 1).all()

    def test_linear_target_for_precision_compressor(
        self, train_fields, fast_config
    ):
        engine = TrainingEngine(get_compressor("fpzip"), config=fast_config)
        engine.add_dataset(train_fields[0])
        _, y = engine.build_training_matrix()
        assert y.min() >= 10 and y.max() <= 32

    def test_fit_produces_model(self, train_fields, fast_config, fast_model_factory):
        engine = TrainingEngine(
            get_compressor("sz"), config=fast_config, model_factory=fast_model_factory
        )
        engine.add_dataset(train_fields[0])
        model = engine.fit()
        assert model is engine.model
        assert engine.report.fit_seconds > 0

    def test_fit_without_data_rejected(self, fast_config):
        engine = TrainingEngine(get_compressor("sz"), config=fast_config)
        with pytest.raises(InvalidConfiguration):
            engine.fit()

    def test_model_before_fit_raises(self, fast_config):
        engine = TrainingEngine(get_compressor("sz"), config=fast_config)
        with pytest.raises(NotFittedError):
            _ = engine.model

    def test_adjustment_toggle_changes_matrix(self, fast_config):
        data = np.zeros((16, 16, 16), dtype=np.float32)
        data[:4, :4, :4] = np.random.default_rng(0).uniform(1, 2, (4, 4, 4))
        with_ca = TrainingEngine(
            get_compressor("sz"),
            config=FXRZConfig(stationary_points=6, augmented_samples=20),
        )
        without_ca = TrainingEngine(
            get_compressor("sz"),
            config=FXRZConfig(
                stationary_points=6, augmented_samples=20, use_adjustment=False
            ),
        )
        with_ca.add_dataset(data)
        without_ca.add_dataset(data)
        x_ca, _ = with_ca.build_training_matrix()
        x_raw, _ = without_ca.build_training_matrix()
        # The ACR column (last) must differ when R < 1.
        assert not np.allclose(x_ca[:, -1], x_raw[:, -1])


class TestInferenceEngine:
    def test_estimate_fields(self, train_fields, fast_config, fast_model_factory):
        comp = get_compressor("sz")
        engine = TrainingEngine(
            comp, config=fast_config, model_factory=fast_model_factory
        )
        for data in train_fields:
            engine.add_dataset(data)
        model = engine.fit()
        inference = InferenceEngine(model, comp, config=fast_config)
        estimate = inference.estimate(train_fields[0], 10.0)
        assert estimate.config > 0
        assert estimate.target_ratio == 10.0
        assert 0 <= estimate.nonconstant <= 1
        assert estimate.features.shape == (5,)
        assert estimate.analysis_seconds > 0

    def test_precision_estimate_snapped(
        self, train_fields, fast_config, fast_model_factory
    ):
        comp = get_compressor("fpzip")
        engine = TrainingEngine(
            comp, config=fast_config, model_factory=fast_model_factory
        )
        engine.add_dataset(train_fields[0])
        model = engine.fit()
        inference = InferenceEngine(model, comp, config=fast_config)
        estimate = inference.estimate(train_fields[0], 2.0)
        assert estimate.config == round(estimate.config)

    def test_nonpositive_target_rejected(
        self, train_fields, fast_config, fast_model_factory
    ):
        comp = get_compressor("sz")
        engine = TrainingEngine(
            comp, config=fast_config, model_factory=fast_model_factory
        )
        engine.add_dataset(train_fields[0])
        inference = InferenceEngine(engine.fit(), comp, config=fast_config)
        with pytest.raises(InvalidConfiguration):
            inference.estimate(train_fields[0], 0.0)

    def test_cached_analysis_reproduces_cold_estimate(
        self, train_fields, fast_config, fast_model_factory
    ):
        """analyze() + estimate(analysis=...) == the single-shot path."""
        comp = get_compressor("sz")
        engine = TrainingEngine(
            comp, config=fast_config, model_factory=fast_model_factory
        )
        engine.add_dataset(train_fields[0])
        inference = InferenceEngine(engine.fit(), comp, config=fast_config)
        analysis = inference.analyze(train_fields[0])
        assert analysis.seconds > 0
        assert not analysis.features.flags.writeable
        for tcr in (5.0, 10.0, 20.0):
            cold = inference.estimate(train_fields[0], tcr)
            warm = inference.estimate(train_fields[0], tcr, analysis=analysis)
            assert warm.config == cold.config
            assert warm.adjusted_target == cold.adjusted_target
            assert warm.nonconstant == cold.nonconstant
            assert np.array_equal(warm.features, cold.features)


class TestEstimateDataclass:
    def _estimate(self, **overrides) -> "Estimate":
        from repro.core.inference import Estimate

        fields = dict(
            config=1e-3,
            target_ratio=10.0,
            adjusted_target=8.0,
            nonconstant=0.8,
            features=np.arange(5.0),
            analysis_seconds=0.01,
        )
        fields.update(overrides)
        return Estimate(**fields)

    def test_features_stored_read_only(self):
        estimate = self._estimate()
        with pytest.raises(ValueError):
            estimate.features[0] = 99.0

    def test_caller_array_not_mutated_or_aliased(self):
        source = np.arange(5.0)
        estimate = self._estimate(features=source)
        source[0] = 99.0  # caller keeps a writable copy
        assert estimate.features[0] == 0.0

    def test_frozen_attributes(self):
        estimate = self._estimate()
        with pytest.raises(AttributeError):
            estimate.config = 2.0

    def test_eq_compares_by_value(self):
        assert self._estimate() == self._estimate()
        assert self._estimate() != self._estimate(config=2e-3)
        assert self._estimate() != self._estimate(
            features=np.array([9.0, 1, 2, 3, 4])
        )

    def test_eq_against_other_types(self):
        assert self._estimate() != "not an estimate"
        assert (self._estimate() == object()) is False
