"""Unit tests for the kernel SVR."""

import numpy as np
import pytest

from repro.errors import InvalidConfiguration, NotFittedError
from repro.ml.metrics import r2_score
from repro.ml.svr import SVR, _rbf_kernel


class TestKernel:
    def test_diagonal_is_two(self, rng):
        # exp(0) + 1 (bias augmentation) = 2 on the diagonal.
        x = rng.standard_normal((10, 3))
        k = _rbf_kernel(x, x, 0.5)
        assert np.allclose(np.diag(k), 2.0)

    def test_symmetry(self, rng):
        x = rng.standard_normal((15, 2))
        k = _rbf_kernel(x, x, 1.0)
        assert np.allclose(k, k.T)

    def test_decays_with_distance(self):
        a = np.array([[0.0], [10.0]])
        k = _rbf_kernel(a, a, 1.0)
        assert k[0, 1] < k[0, 0]


class TestFitting:
    def test_fits_smooth_function(self, rng):
        x = rng.uniform(-2, 2, (250, 1))
        y = np.sin(2 * x[:, 0])
        model = SVR(c=10.0, epsilon=0.01, gamma=2.0).fit(x, y)
        assert r2_score(y, model.predict(x)) > 0.95

    def test_epsilon_tube_sparsifies(self, rng):
        x = rng.uniform(-1, 1, (120, 1))
        y = 0.5 * x[:, 0]
        tight = SVR(c=10.0, epsilon=0.001).fit(x, y)
        loose = SVR(c=10.0, epsilon=0.5).fit(x, y)
        assert loose.support_vector_count <= tight.support_vector_count

    def test_gamma_scale_heuristic(self, rng):
        x = rng.uniform(0, 100, (50, 4))
        model = SVR(gamma="scale")
        gamma = model._resolve_gamma(x)
        assert gamma == pytest.approx(1.0 / (4 * x.var()))

    def test_constant_target(self, rng):
        x = rng.standard_normal((40, 2))
        y = np.full(40, 3.0)
        model = SVR(c=10.0, epsilon=0.01).fit(x, y)
        assert np.allclose(model.predict(x), 3.0, atol=0.1)

    def test_prediction_shape(self, rng):
        x = rng.standard_normal((30, 3))
        y = x[:, 0]
        model = SVR().fit(x, y)
        assert model.predict(x[:7]).shape == (7,)


class TestValidation:
    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            SVR().predict(np.zeros((1, 2)))

    def test_bad_params_rejected(self):
        with pytest.raises(InvalidConfiguration):
            SVR(c=0.0)
        with pytest.raises(InvalidConfiguration):
            SVR(epsilon=-0.1)
        with pytest.raises(InvalidConfiguration):
            SVR(gamma="auto")._resolve_gamma(np.zeros((3, 2)))
        with pytest.raises(InvalidConfiguration):
            SVR(gamma=-1.0)._resolve_gamma(np.zeros((3, 2)))

    def test_bad_shapes_rejected(self):
        with pytest.raises(InvalidConfiguration):
            SVR().fit(np.zeros((5, 2)), np.zeros(4))
