"""Unit tests for the drift detector."""

import numpy as np
import pytest

from repro.errors import InvalidConfiguration
from repro.lifecycle import DriftDetector, OutcomeRecord
from repro.robustness.confidence import FeatureEnvelope

pytestmark = pytest.mark.lifecycle

#: 6-dim envelope: five features in [0, 1], ACR in [2, 20].
ENVELOPE = FeatureEnvelope(
    np.array(
        [
            [0.0, 0.0, 0.0, 0.0, 0.0, 2.0],
            [1.0, 1.0, 1.0, 1.0, 1.0, 20.0],
        ]
    ),
    margin=0.0,
)


def record(
    *, inside: bool = True, measured: float | None = None, target: float = 10.0
) -> OutcomeRecord:
    features = (0.5,) * 5 if inside else (5.0,) * 5
    return OutcomeRecord(
        dataset_key="k",
        compressor="sz",
        features=features,
        nonconstant=0.8,
        target_ratio=target,
        adjusted_target=8.0,
        config=1e-3,
        measured_ratio=measured,
        source="test",
    )


def detector(**options) -> DriftDetector:
    options.setdefault("window", 32)
    options.setdefault("min_samples", 4)
    options.setdefault("hysteresis", 3)
    return DriftDetector(ENVELOPE, **options)


class TestSignals:
    def test_stable_on_in_envelope_traffic(self):
        det = detector()
        for _ in range(20):
            det.observe(record(inside=True))
        assert det.state == "stable"
        assert det.snapshot.ood_rate == 0.0

    def test_ood_traffic_trips_after_hysteresis(self):
        det = detector()
        snapshots = [det.observe(record(inside=False)) for _ in range(8)]
        # min_samples=4 gates the first hot observations; 3 consecutive
        # hot ones past that trip the detector.
        assert snapshots[2].state == "stable"
        assert det.state == "drifting"
        assert det.trips == 1

    def test_calibration_error_alone_trips(self):
        det = detector(error_threshold=0.2, error_alpha=1.0)
        # In-envelope traffic whose measured ratio is 40% off target.
        for _ in range(8):
            det.observe(record(inside=True, measured=6.0, target=10.0))
        assert det.state == "drifting"
        assert det.snapshot.error_ewma == pytest.approx(0.4)

    def test_estimate_only_records_leave_ewma_unset(self):
        det = detector()
        det.observe(record(inside=True))
        assert det.snapshot.error_ewma is None

    def test_hysteresis_blocks_flapping(self):
        det = detector()
        for _ in range(10):
            det.observe(record(inside=False))
        assert det.state == "drifting"
        # Two cool observations are not enough to leave drifting...
        window_flush = [record(inside=True)] * 2
        det.observe_all(window_flush)
        assert det.state == "drifting"
        # ...but the OOD rate must also fall below threshold to cool;
        # flush the window with in-envelope traffic.
        for _ in range(40):
            det.observe(record(inside=True))
        assert det.state == "stable"
        assert det.trips == 1  # the recovery is not a new trip

    def test_reset_returns_to_stable_but_keeps_trips(self):
        det = detector()
        for _ in range(10):
            det.observe(record(inside=False))
        assert det.drifting
        det.reset()
        assert det.state == "stable"
        assert det.snapshot.samples == 0
        assert det.trips == 1

    def test_validates_options(self):
        with pytest.raises(InvalidConfiguration):
            detector(window=0)
        with pytest.raises(InvalidConfiguration):
            detector(ood_threshold=0.0)
        with pytest.raises(InvalidConfiguration):
            detector(error_threshold=0.0)
        with pytest.raises(InvalidConfiguration):
            detector(hysteresis=0)
        with pytest.raises(InvalidConfiguration):
            detector(error_alpha=1.5)

    def test_metrics_exported_through_collector(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        det = DriftDetector(
            ENVELOPE, window=32, min_samples=4, hysteresis=1, registry=registry
        )
        for _ in range(6):
            det.observe(record(inside=False))
        text = registry.render_prometheus()
        assert "repro_lifecycle_drift_state 1" in text
        assert "repro_lifecycle_drift_ood_rate 1" in text
        assert "repro_lifecycle_drift_trips_total 1" in text
