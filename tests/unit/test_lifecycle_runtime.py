"""Runtime wiring of the lifecycle subsystem: knobs, context, spec."""

from __future__ import annotations

import pytest

from repro.errors import InvalidConfiguration
from repro.lifecycle import read_outcomes
from repro.runtime import RuntimeConfig, RuntimeContext

from tests.unit.test_lifecycle_outcomes import make_record

pytestmark = [pytest.mark.runtime, pytest.mark.lifecycle]


class TestLifecycleKnobs:
    def test_defaults(self):
        config = RuntimeConfig.resolve(env={})
        assert config.outcome_log == ""
        assert config.drift_window == 256
        assert config.drift_ood_threshold == 0.5
        assert config.drift_error_threshold == 0.25
        assert config.drift_hysteresis == 3
        assert config.retrain_min_samples == 64
        assert config.canary_fraction == 0.25
        assert config.canary_margin == 0.0

    def test_layering(self, tmp_path):
        profile = tmp_path / "runtime.toml"
        profile.write_text("[runtime]\ndrift_window = 64\n")
        config = RuntimeConfig.resolve(
            profile=profile,
            env={
                "REPRO_OUTCOME_LOG": "/tmp/o.jsonl",
                "REPRO_DRIFT_WINDOW": "128",
                "REPRO_CANARY_MARGIN": "0.1",
            },
            retrain_min_samples=16,
        )
        assert config.outcome_log == "/tmp/o.jsonl"
        assert config.drift_window == 64  # profile beats env
        assert config.canary_margin == 0.1
        assert config.retrain_min_samples == 16
        assert config.provenance["drift_window"] == "profile"
        assert config.provenance["outcome_log"] == "env"
        assert config.provenance["retrain_min_samples"] == "override"

    def test_validation(self):
        for bad in (
            {"drift_window": 0},
            {"drift_ood_threshold": 0.0},
            {"drift_ood_threshold": 1.5},
            {"drift_error_threshold": 0.0},
            {"drift_hysteresis": 0},
            {"retrain_min_samples": 0},
            {"canary_fraction": 1.0},
            {"canary_margin": 1.0},
        ):
            with pytest.raises(InvalidConfiguration):
                RuntimeConfig(**bad)


class TestContextLifecycleWiring:
    def test_lifecycle_is_none_when_logging_off(self):
        with RuntimeContext() as ctx:
            assert ctx.lifecycle is None

    def test_lifecycle_built_lazily_and_closed_with_context(self, tmp_path):
        path = tmp_path / "outcomes.jsonl"
        config = RuntimeConfig.resolve(env={}, outcome_log=str(path))
        ctx = RuntimeContext(config=config)
        log = ctx.lifecycle
        assert log is ctx.lifecycle  # one log per session
        log.record(make_record(0))
        ctx.close()
        with pytest.raises(InvalidConfiguration):
            log.record(make_record(1))
        assert len(read_outcomes(path).records) == 1

    def test_closed_context_refuses_lifecycle(self):
        ctx = RuntimeContext()
        ctx.close()
        with pytest.raises(InvalidConfiguration):
            _ = ctx.lifecycle

    def test_borrowed_log_not_closed(self, tmp_path):
        from repro.lifecycle import OutcomeLog

        log = OutcomeLog(tmp_path / "o.jsonl")
        ctx = RuntimeContext(outcomes=log)
        assert ctx.lifecycle is log
        ctx.close()
        log.record(make_record(0))  # still open: the borrower must not close
        log.close()

    def test_drift_options_mirror_config(self):
        config = RuntimeConfig.resolve(
            env={}, drift_window=32, drift_hysteresis=5
        )
        with RuntimeContext(config=config) as ctx:
            options = ctx.drift_options
        assert options["window"] == 32
        assert options["hysteresis"] == 5
        assert options["ood_threshold"] == 0.5
        assert options["error_threshold"] == 0.25

    def test_spec_never_forwards_the_outcome_log(self, tmp_path):
        """Child processes must not write the parent's log (single writer)."""
        config = RuntimeConfig.resolve(
            env={},
            outcome_log=str(tmp_path / "o.jsonl"),
            drift_window=32,
        )
        with RuntimeContext(config=config) as ctx:
            spec = ctx.spec()
        assert spec["outcome_log"] == ""
        assert spec["drift_window"] == 32  # drift knobs do travel

    def test_from_args_picks_up_outcome_log(self, tmp_path):
        from repro.cli import build_parser

        path = tmp_path / "o.jsonl"
        args = build_parser().parse_args(
            ["search", "data.npy", "--outcome-log", str(path), "--ratio", "8"]
        )
        with RuntimeContext.from_args(args, env={}) as ctx:
            assert ctx.config.outcome_log == str(path)
            assert ctx.config.provenance["outcome_log"] == "override"
