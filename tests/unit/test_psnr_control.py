"""Unit tests for PSNR-targeted error-bound selection."""

import numpy as np
import pytest

from repro.analysis.distortion import psnr
from repro.compressors import get_compressor
from repro.core.psnr_control import (
    analytic_bound_for_psnr,
    calibrated_bound_for_psnr,
)
from repro.errors import InvalidConfiguration


class TestAnalytic:
    def test_formula_inversion(self, smooth_field3d):
        bound = analytic_bound_for_psnr(smooth_field3d, 60.0)
        value_range = float(np.ptp(smooth_field3d))
        # PSNR = -20 log10(eb / (range*sqrt(3))) must give back 60.
        implied = -20 * np.log10(bound / (value_range * np.sqrt(3)))
        assert implied == pytest.approx(60.0)

    def test_higher_psnr_needs_tighter_bound(self, smooth_field3d):
        loose = analytic_bound_for_psnr(smooth_field3d, 40.0)
        tight = analytic_bound_for_psnr(smooth_field3d, 80.0)
        assert tight < loose

    def test_analytic_close_for_sz(self, smooth_field3d):
        """The uniform-error model fits the SZ quantizer within ~3 dB."""
        comp = get_compressor("sz")
        for target in (45.0, 60.0):
            bound = analytic_bound_for_psnr(smooth_field3d, target)
            recon, _ = comp.roundtrip(smooth_field3d, bound)
            assert abs(psnr(smooth_field3d, recon) - target) < 3.0

    def test_bad_inputs_rejected(self, smooth_field3d):
        with pytest.raises(InvalidConfiguration):
            analytic_bound_for_psnr(smooth_field3d, 0.0)
        with pytest.raises(InvalidConfiguration):
            analytic_bound_for_psnr(np.ones((4, 4)), 40.0)


class TestCalibrated:
    @pytest.mark.parametrize("name", ["sz", "zfp", "mgard"])
    def test_hits_target_within_3db(self, smooth_field3d, name):
        comp = get_compressor(name)
        target = 50.0
        bound = calibrated_bound_for_psnr(comp, smooth_field3d, target, probes=2)
        recon, _ = comp.roundtrip(smooth_field3d, bound)
        assert abs(psnr(smooth_field3d, recon) - target) < 3.0

    def test_zero_probes_is_analytic(self, smooth_field3d):
        comp = get_compressor("sz")
        calibrated = calibrated_bound_for_psnr(
            comp, smooth_field3d, 55.0, probes=0
        )
        lo, hi = comp.config_domain(smooth_field3d)
        analytic = float(
            np.clip(analytic_bound_for_psnr(smooth_field3d, 55.0), lo, hi)
        )
        assert calibrated == pytest.approx(analytic)

    def test_precision_compressor_rejected(self, smooth_field3d):
        comp = get_compressor("fpzip")
        with pytest.raises(InvalidConfiguration):
            calibrated_bound_for_psnr(comp, smooth_field3d, 50.0)

    def test_negative_probes_rejected(self, smooth_field3d):
        comp = get_compressor("sz")
        with pytest.raises(InvalidConfiguration):
            calibrated_bound_for_psnr(comp, smooth_field3d, 50.0, probes=-1)


@pytest.mark.objective
class TestEdgeCases:
    def test_non_finite_data_rejected(self):
        bad = np.array([[1.0, np.nan], [2.0, 3.0]])
        with pytest.raises(InvalidConfiguration):
            analytic_bound_for_psnr(bad, 50.0)
        bad = np.array([1.0, np.inf, 2.0])
        with pytest.raises(InvalidConfiguration):
            analytic_bound_for_psnr(bad, 50.0)

    def test_zero_probes_never_runs_the_compressor(
        self, smooth_field3d, monkeypatch
    ):
        comp = get_compressor("sz")
        calls = []
        original = comp.roundtrip

        def spy(data, config):
            calls.append(config)
            return original(data, config)

        monkeypatch.setattr(comp, "roundtrip", spy)
        calibrated_bound_for_psnr(comp, smooth_field3d, 55.0, probes=0)
        assert calls == []

    def test_constant_after_sampling_rejected(self):
        # A field whose value range collapses to zero: the analytic
        # inversion has no bound to offer and both paths must say so
        # instead of returning 0 (which every compressor rejects).
        constant = np.full((12, 12, 12), 3.75)
        comp = get_compressor("sz")
        with pytest.raises(InvalidConfiguration):
            analytic_bound_for_psnr(constant, 50.0)
        with pytest.raises(InvalidConfiguration):
            calibrated_bound_for_psnr(comp, constant, 50.0, probes=2)

    def test_target_above_lossless_knee_stops_early(
        self, smooth_field3d, monkeypatch
    ):
        # When a probe comes back bit-exact (infinite PSNR) the search
        # must return that bound instead of spending the rest of the
        # budget chasing a target no tighter bound can improve on.
        comp = get_compressor("sz")
        calls = []

        def lossless(data, config):
            calls.append(config)
            return data.copy(), None

        monkeypatch.setattr(comp, "roundtrip", lossless)
        bound = calibrated_bound_for_psnr(
            comp, smooth_field3d, 300.0, probes=4
        )
        assert len(calls) == 1
        lo, hi = comp.config_domain(smooth_field3d)
        expected = float(
            np.clip(analytic_bound_for_psnr(smooth_field3d, 300.0), lo, hi)
        )
        assert bound == pytest.approx(expected)
