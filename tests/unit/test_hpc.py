"""Unit tests for the parallel-dumping model."""

import numpy as np
import pytest

from repro.compressors import get_compressor
from repro.errors import InvalidConfiguration, RetryExhausted
from repro.hpc.iosim import (
    DumpBreakdown,
    DumpScenario,
    simulate_dump,
    simulate_faulty_dump,
)
from repro.hpc.throughput import measure_throughput
from repro.robustness import FaultSpec, RetryPolicy


def _scenario(**overrides):
    base = dict(
        n_ranks=1024,
        bytes_per_rank=512e6,
        compression_ratio=20.0,
        compress_throughput=200e6,
        analysis_seconds=0.5,
        shared_bandwidth=2e9,
        per_rank_bandwidth=1e9,
    )
    base.update(overrides)
    return DumpScenario(**base)


class TestScenario:
    def test_breakdown_totals(self):
        breakdown = simulate_dump(_scenario())
        assert breakdown.total == pytest.approx(
            breakdown.analysis + breakdown.compression + breakdown.write
        )

    def test_write_time_shared_bandwidth(self):
        breakdown = simulate_dump(_scenario())
        compressed = 512e6 / 20.0
        expected = compressed / (2e9 / 1024)
        assert breakdown.write == pytest.approx(expected)

    def test_small_scale_uses_rank_link(self):
        breakdown = simulate_dump(_scenario(n_ranks=1))
        compressed = 512e6 / 20.0
        assert breakdown.write == pytest.approx(compressed / 1e9)

    def test_fxrz_beats_fraz_band(self):
        """The paper's gain band: speedup > 1, largest at small scale."""
        compress_time = 512e6 / 200e6
        speedups = []
        for n_ranks in (64, 256, 1024, 4096):
            fxrz = simulate_dump(
                _scenario(n_ranks=n_ranks, analysis_seconds=0.1 * compress_time)
            )
            fraz = simulate_dump(
                _scenario(n_ranks=n_ranks, analysis_seconds=15 * compress_time)
            )
            speedups.append(fraz.total / fxrz.total)
        assert all(s > 1.0 for s in speedups)
        assert speedups[0] > speedups[-1], "I/O bound at scale shrinks the gain"

    def test_higher_ratio_writes_faster(self):
        slow = simulate_dump(_scenario(compression_ratio=5.0))
        fast = simulate_dump(_scenario(compression_ratio=50.0))
        assert fast.write < slow.write

    def test_bad_scenarios_rejected(self):
        with pytest.raises(InvalidConfiguration):
            _scenario(n_ranks=0)
        with pytest.raises(InvalidConfiguration):
            _scenario(compression_ratio=-1.0)
        with pytest.raises(InvalidConfiguration):
            _scenario(analysis_seconds=-0.1)


@pytest.mark.robustness
class TestFaultInjection:
    def _faults(self, **overrides):
        base = dict(
            seed=7,
            rank_failure_prob=0.12,
            straggler_prob=0.1,
            straggler_slowdown=4.0,
            write_error_prob=0.05,
            checkpoint_fraction=0.5,
        )
        base.update(overrides)
        return FaultSpec(**base)

    def test_no_faults_matches_clean_dump(self):
        scenario = _scenario(n_ranks=16)
        report = simulate_faulty_dump(
            scenario, FaultSpec(seed=0), retry=RetryPolicy()
        )
        assert report.failed_ranks == 0
        assert report.total_attempts == 16
        assert report.completion_seconds == pytest.approx(
            report.fault_free_seconds
        )
        assert report.overhead == pytest.approx(1.0)

    def test_deterministic_under_fixed_seed(self):
        scenario = _scenario(n_ranks=64)
        a = simulate_faulty_dump(scenario, self._faults(), retry=RetryPolicy())
        b = simulate_faulty_dump(scenario, self._faults(), retry=RetryPolicy())
        assert a == b

    def test_different_seed_differs(self):
        scenario = _scenario(n_ranks=64)
        a = simulate_faulty_dump(scenario, self._faults(seed=7), retry=RetryPolicy())
        b = simulate_faulty_dump(scenario, self._faults(seed=8), retry=RetryPolicy())
        assert a != b

    def test_heavy_faults_complete_via_retry(self):
        """The ISSUE scenario: >=10% rank failures + stragglers finishes."""
        scenario = _scenario(n_ranks=64)
        report = simulate_faulty_dump(
            scenario,
            self._faults(),
            retry=RetryPolicy(max_attempts=8, base_delay=0.1),
        )
        assert len(report.ranks) == 64
        assert report.failed_ranks > 0
        assert any(r.straggler for r in report.ranks)
        assert report.completion_seconds > report.fault_free_seconds
        # Per-rank attempts are all listed and plausible.
        for outcome in report.ranks:
            assert 1 <= outcome.attempts <= 8
            assert len(outcome.events) == outcome.attempts - 1
            assert outcome.seconds > 0.0

    def test_retries_disabled_raises(self):
        scenario = _scenario(n_ranks=64)
        with pytest.raises(RetryExhausted) as excinfo:
            simulate_faulty_dump(scenario, self._faults(), retry=None)
        assert excinfo.value.attempts == 1
        assert excinfo.value.last_cause in ("rank-failure", "write-error")

    def test_tiny_budget_exhausts(self):
        scenario = _scenario(n_ranks=256)
        with pytest.raises(RetryExhausted) as excinfo:
            simulate_faulty_dump(
                scenario,
                self._faults(rank_failure_prob=0.9, checkpoint_fraction=0.0),
                retry=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
            )
        assert excinfo.value.attempts == 2

    def test_checkpointing_reduces_completion_time(self):
        scenario = _scenario(n_ranks=64)
        retry = RetryPolicy(max_attempts=10, base_delay=0.0, jitter=0.0)
        no_ckpt = simulate_faulty_dump(
            scenario, self._faults(checkpoint_fraction=0.0), retry=retry
        )
        full_ckpt = simulate_faulty_dump(
            scenario, self._faults(checkpoint_fraction=1.0), retry=retry
        )
        total = lambda rep: sum(r.seconds for r in rep.ranks)
        assert total(full_ckpt) < total(no_ckpt)

    def test_bad_fault_spec_rejected(self):
        with pytest.raises(InvalidConfiguration):
            FaultSpec(seed=0, rank_failure_prob=1.5)
        with pytest.raises(InvalidConfiguration):
            FaultSpec(seed=0, straggler_slowdown=0.5)
        with pytest.raises(InvalidConfiguration):
            FaultSpec(seed=0, checkpoint_fraction=-0.1)


class TestThroughput:
    def test_positive_and_plausible(self, smooth_field3d):
        comp = get_compressor("sz")
        rate = measure_throughput(comp, smooth_field3d, 0.01, repeats=1)
        assert rate > 0
        # A 55 KB field should compress in well under a minute.
        assert rate > smooth_field3d.nbytes / 60

    def test_bad_repeats_rejected(self, smooth_field3d):
        comp = get_compressor("sz")
        with pytest.raises(InvalidConfiguration):
            measure_throughput(comp, smooth_field3d, 0.01, repeats=0)
