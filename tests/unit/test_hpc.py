"""Unit tests for the parallel-dumping model."""

import numpy as np
import pytest

from repro.compressors import get_compressor
from repro.errors import InvalidConfiguration
from repro.hpc.iosim import DumpBreakdown, DumpScenario, simulate_dump
from repro.hpc.throughput import measure_throughput


def _scenario(**overrides):
    base = dict(
        n_ranks=1024,
        bytes_per_rank=512e6,
        compression_ratio=20.0,
        compress_throughput=200e6,
        analysis_seconds=0.5,
        shared_bandwidth=2e9,
        per_rank_bandwidth=1e9,
    )
    base.update(overrides)
    return DumpScenario(**base)


class TestScenario:
    def test_breakdown_totals(self):
        breakdown = simulate_dump(_scenario())
        assert breakdown.total == pytest.approx(
            breakdown.analysis + breakdown.compression + breakdown.write
        )

    def test_write_time_shared_bandwidth(self):
        breakdown = simulate_dump(_scenario())
        compressed = 512e6 / 20.0
        expected = compressed / (2e9 / 1024)
        assert breakdown.write == pytest.approx(expected)

    def test_small_scale_uses_rank_link(self):
        breakdown = simulate_dump(_scenario(n_ranks=1))
        compressed = 512e6 / 20.0
        assert breakdown.write == pytest.approx(compressed / 1e9)

    def test_fxrz_beats_fraz_band(self):
        """The paper's gain band: speedup > 1, largest at small scale."""
        compress_time = 512e6 / 200e6
        speedups = []
        for n_ranks in (64, 256, 1024, 4096):
            fxrz = simulate_dump(
                _scenario(n_ranks=n_ranks, analysis_seconds=0.1 * compress_time)
            )
            fraz = simulate_dump(
                _scenario(n_ranks=n_ranks, analysis_seconds=15 * compress_time)
            )
            speedups.append(fraz.total / fxrz.total)
        assert all(s > 1.0 for s in speedups)
        assert speedups[0] > speedups[-1], "I/O bound at scale shrinks the gain"

    def test_higher_ratio_writes_faster(self):
        slow = simulate_dump(_scenario(compression_ratio=5.0))
        fast = simulate_dump(_scenario(compression_ratio=50.0))
        assert fast.write < slow.write

    def test_bad_scenarios_rejected(self):
        with pytest.raises(InvalidConfiguration):
            _scenario(n_ranks=0)
        with pytest.raises(InvalidConfiguration):
            _scenario(compression_ratio=-1.0)
        with pytest.raises(InvalidConfiguration):
            _scenario(analysis_seconds=-0.1)


class TestThroughput:
    def test_positive_and_plausible(self, smooth_field3d):
        comp = get_compressor("sz")
        rate = measure_throughput(comp, smooth_field3d, 0.01, repeats=1)
        assert rate > 0
        # A 55 KB field should compress in well under a minute.
        assert rate > smooth_field3d.nbytes / 60

    def test_bad_repeats_rejected(self, smooth_field3d):
        comp = get_compressor("sz")
        with pytest.raises(InvalidConfiguration):
            measure_throughput(comp, smooth_field3d, 0.01, repeats=0)
