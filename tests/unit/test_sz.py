"""Unit tests for the SZ-like interpolation compressor."""

import numpy as np
import pytest

from repro.compressors.sz import SZCompressor, _initial_stride, _plan_steps
from repro.errors import CorruptStreamError


@pytest.fixture(params=["cubic", "linear"])
def compressor(request):
    return SZCompressor(interpolation=request.param)


class TestPlanning:
    def test_initial_stride_is_power_of_two(self):
        assert _initial_stride((48, 48, 48)) == 64
        assert _initial_stride((5,)) == 8
        assert _initial_stride((1, 1)) == 2

    def test_steps_cover_every_point_once(self):
        shape = (13, 10)
        s0 = _initial_stride(shape)
        covered = np.zeros(shape, dtype=int)
        covered[tuple(slice(0, None, s0) for _ in shape)] += 1
        for step in _plan_steps(shape, s0):
            write_key = list(step.key)
            write_key[step.axis] = slice(step.half, None, step.cur)
            covered[tuple(write_key)] += 1
        assert (covered == 1).all(), "each point must be coded exactly once"

    @pytest.mark.parametrize("shape", [(7,), (9, 5), (6, 11, 4), (3, 3, 3, 3)])
    def test_coverage_generalizes(self, shape):
        s0 = _initial_stride(shape)
        covered = np.zeros(shape, dtype=int)
        covered[tuple(slice(0, None, s0) for _ in shape)] += 1
        for step in _plan_steps(shape, s0):
            write_key = list(step.key)
            write_key[step.axis] = slice(step.half, None, step.cur)
            covered[tuple(write_key)] += 1
        assert (covered == 1).all()


class TestRoundtrip:
    @pytest.mark.parametrize("eb", [1e-3, 1e-2, 1e-1])
    def test_error_bound_respected(self, compressor, smooth_field3d, eb):
        recon, blob = compressor.roundtrip(smooth_field3d, eb)
        compressor.verify(smooth_field3d, recon, blob.config)
        assert recon.shape == smooth_field3d.shape
        assert recon.dtype == smooth_field3d.dtype

    def test_rough_data_with_outliers(self, compressor, rough_field3d):
        recon, blob = compressor.roundtrip(rough_field3d, 1e-4)
        compressor.verify(rough_field3d, recon, blob.config)

    @pytest.mark.parametrize(
        "shape", [(1,), (2,), (17,), (5, 3), (33, 9), (13, 21, 7), (4, 5, 6, 7)]
    )
    def test_odd_shapes(self, compressor, rng, shape):
        data = rng.standard_normal(shape).cumsum(axis=-1)
        recon, blob = compressor.roundtrip(data, 0.05)
        compressor.verify(data, recon, blob.config)

    def test_constant_field(self, compressor):
        data = np.full((10, 10), 7.5)
        recon, blob = compressor.roundtrip(data, 0.01)
        assert np.max(np.abs(recon - data)) <= 0.01
        assert blob.compression_ratio > 20

    def test_ratio_grows_with_bound(self, compressor, smooth_field3d):
        ratios = [
            compressor.compression_ratio(smooth_field3d, eb)
            for eb in (1e-4, 1e-3, 1e-2, 1e-1)
        ]
        assert ratios == sorted(ratios), "CR must not shrink as eb grows"

    def test_cubic_beats_linear_on_smooth_data(self, smooth_field3d):
        cubic = SZCompressor("cubic").compression_ratio(smooth_field3d, 1e-3)
        linear = SZCompressor("linear").compression_ratio(smooth_field3d, 1e-3)
        assert cubic >= linear * 0.95  # cubic is at least competitive

    def test_float64_input(self, compressor, rng):
        data = rng.standard_normal((12, 12, 12)).cumsum(axis=0)
        recon, blob = compressor.roundtrip(data, 1e-3)
        assert recon.dtype == np.float64
        compressor.verify(data, recon, blob.config)


class TestStream:
    def test_corrupt_header_raises(self, compressor, smooth_field3d):
        blob = compressor.compress(smooth_field3d, 0.01)
        broken = type(blob)(
            data=blob.data[:8],
            original_shape=blob.original_shape,
            original_dtype=blob.original_dtype,
            compressor=blob.compressor,
            config=blob.config,
        )
        with pytest.raises(CorruptStreamError):
            compressor.decompress(broken)

    def test_bad_interpolation_name_rejected(self):
        with pytest.raises(ValueError):
            SZCompressor("quintic")
