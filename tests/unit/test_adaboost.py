"""Unit tests for AdaBoost.R2."""

import numpy as np
import pytest

from repro.errors import InvalidConfiguration, NotFittedError
from repro.ml.adaboost import AdaBoostRegressor
from repro.ml.metrics import r2_score


def _wavy(n=300, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-2, 2, (n, 2))
    y = np.sin(2 * x[:, 0]) + 0.3 * x[:, 1]
    return x, y + 0.1 * rng.standard_normal(n)


class TestFitting:
    def test_boosting_beats_single_stump(self):
        x, y = _wavy()
        single = AdaBoostRegressor(n_estimators=1, max_depth=2, random_state=0)
        boosted = AdaBoostRegressor(n_estimators=40, max_depth=2, random_state=0)
        single.fit(x[:200], y[:200])
        boosted.fit(x[:200], y[:200])
        r2_single = r2_score(y[200:], single.predict(x[200:]))
        r2_boosted = r2_score(y[200:], boosted.predict(x[200:]))
        assert r2_boosted > r2_single

    def test_perfect_data_short_circuits(self):
        x = np.linspace(0, 1, 50)[:, None]
        y = np.where(x[:, 0] < 0.5, 0.0, 1.0)
        model = AdaBoostRegressor(n_estimators=30, max_depth=2, random_state=0)
        model.fit(x, y)
        assert np.allclose(model.predict(x), y)

    def test_deterministic_with_seed(self):
        x, y = _wavy(150)
        m1 = AdaBoostRegressor(n_estimators=10, random_state=5).fit(x, y)
        m2 = AdaBoostRegressor(n_estimators=10, random_state=5).fit(x, y)
        assert np.array_equal(m1.predict(x[:10]), m2.predict(x[:10]))

    @pytest.mark.parametrize("loss", ["linear", "square", "exponential"])
    def test_all_losses_fit(self, loss):
        x, y = _wavy(150)
        model = AdaBoostRegressor(
            n_estimators=15, loss=loss, random_state=0
        ).fit(x, y)
        assert r2_score(y, model.predict(x)) > 0.3

    def test_prediction_is_weighted_median(self):
        """The ensemble output must be one of the weak learners' outputs."""
        x, y = _wavy(100)
        model = AdaBoostRegressor(n_estimators=12, random_state=1).fit(x, y)
        probe = x[:5]
        ensemble = model.predict(probe)
        individual = np.stack([t.predict(probe) for t in model._estimators])
        for i in range(probe.shape[0]):
            assert ensemble[i] in individual[:, i]


class TestValidation:
    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            AdaBoostRegressor().predict(np.zeros((1, 2)))

    def test_bad_params_rejected(self):
        with pytest.raises(InvalidConfiguration):
            AdaBoostRegressor(n_estimators=0)
        with pytest.raises(InvalidConfiguration):
            AdaBoostRegressor(loss="cubic")
        with pytest.raises(InvalidConfiguration):
            AdaBoostRegressor(learning_rate=0.0)

    def test_bad_shapes_rejected(self):
        with pytest.raises(InvalidConfiguration):
            AdaBoostRegressor().fit(np.zeros((5, 2)), np.zeros(4))
