"""Unit tests for the static range coder."""

import numpy as np
import pytest

from repro.compressors.sz import SZCompressor
from repro.encoding import HuffmanCodec, RangeCoder
from repro.encoding.range_coder import _quantized_counts
from repro.errors import CorruptStreamError, EncodingError


@pytest.fixture()
def coder():
    return RangeCoder()


class TestQuantizedCounts:
    def test_sums_to_total(self, rng):
        counts = rng.integers(1, 10_000, 50)
        scaled = _quantized_counts(counts)
        assert scaled.sum() == 1 << 16
        assert scaled.min() >= 1

    def test_rare_symbols_keep_a_slot(self):
        counts = np.array([1_000_000, 1, 1, 1])
        scaled = _quantized_counts(counts)
        assert scaled.min() >= 1
        assert scaled[0] > scaled[1]

    def test_two_symbols(self):
        scaled = _quantized_counts(np.array([3, 1]))
        assert scaled.sum() == 1 << 16


class TestRoundtrip:
    def test_skewed(self, coder, rng):
        symbols = rng.geometric(0.7, 30_000).astype(np.int64) - 2
        assert np.array_equal(coder.decode(coder.encode(symbols)), symbols)

    def test_uniform(self, coder, rng):
        symbols = rng.integers(-500, 500, 10_000)
        assert np.array_equal(coder.decode(coder.encode(symbols)), symbols)

    def test_empty(self, coder):
        assert coder.decode(coder.encode(np.zeros(0, np.int64))).size == 0

    def test_single_symbol(self, coder):
        symbols = np.full(5000, -7, dtype=np.int64)
        blob = coder.encode(symbols)
        assert len(blob) < 20
        assert np.array_equal(coder.decode(blob), symbols)

    def test_two_distinct(self, coder):
        symbols = np.array([3, 3, 3, 9, 3, 9], dtype=np.int64)
        assert np.array_equal(coder.decode(coder.encode(symbols)), symbols)

    def test_large_magnitudes(self, coder):
        symbols = np.array([2**40, -(2**40), 0], dtype=np.int64)
        assert np.array_equal(coder.decode(coder.encode(symbols)), symbols)

    def test_beats_huffman_on_very_skewed_data(self, coder, rng):
        """Sub-bit symbol costs: the reason this backend exists."""
        symbols = np.where(
            rng.random(40_000) < 0.97, 0, rng.integers(1, 8, 40_000)
        ).astype(np.int64)
        range_size = len(coder.encode(symbols))
        huffman_size = len(HuffmanCodec().encode(symbols))
        assert range_size < huffman_size * 0.7

    def test_oversized_alphabet_rejected(self, coder):
        with pytest.raises(EncodingError):
            coder.encode(np.arange(70_000, dtype=np.int64))

    def test_truncated_stream_raises_or_mismatches(self, coder, rng):
        symbols = rng.integers(0, 50, 2000)
        blob = coder.encode(symbols)
        with pytest.raises(CorruptStreamError):
            coder.decode(blob[: len(blob) // 3])


class TestSZBackend:
    def test_roundtrip_with_range_entropy(self, smooth_field3d):
        comp = SZCompressor(entropy="range")
        recon, blob = comp.roundtrip(smooth_field3d, 1e-3)
        comp.verify(smooth_field3d, recon, blob.config)

    def test_range_backend_improves_ratio(self, smooth_field3d):
        huffman_cr = SZCompressor(entropy="huffman").compression_ratio(
            smooth_field3d, 1e-3
        )
        range_cr = SZCompressor(entropy="range").compression_ratio(
            smooth_field3d, 1e-3
        )
        assert range_cr > huffman_cr * 0.98

    def test_bad_entropy_rejected(self):
        with pytest.raises(ValueError):
            SZCompressor(entropy="zstd")
