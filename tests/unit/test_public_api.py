"""Tests of the top-level package surface."""

import pytest

import repro
from repro.errors import (
    CompressionError,
    CorruptStreamError,
    DatasetError,
    EncodingError,
    ErrorBoundViolation,
    InvalidConfiguration,
    NotFittedError,
    ReproError,
    SearchError,
)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            EncodingError,
            CorruptStreamError,
            CompressionError,
            ErrorBoundViolation,
            InvalidConfiguration,
            NotFittedError,
            DatasetError,
            SearchError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_corrupt_stream_is_encoding_error(self):
        assert issubclass(CorruptStreamError, EncodingError)

    def test_bound_violation_is_compression_error(self):
        assert issubclass(ErrorBoundViolation, CompressionError)

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            raise SearchError("x")


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_facade_classes_exported(self):
        assert repro.FXRZ is not None
        assert repro.FRaZ is not None
        assert repro.FXRZConfig is not None
