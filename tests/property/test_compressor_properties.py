"""Property-based tests of the compressors' core contracts.

The single most important invariant in the library: for any finite
input and any valid configuration, decompress(compress(x)) respects
the promised error bound.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compressors import get_compressor
from repro.compressors.predictors import lorenzo_reconstruct, lorenzo_residuals
from repro.compressors.quantizer import LinearQuantizer

_shapes = st.sampled_from(
    [(30,), (7, 9), (5, 6, 7), (17, 3), (4, 4, 4), (3, 4, 2, 5)]
)

_fields = _shapes.flatmap(
    lambda shape: hnp.arrays(
        dtype=np.float64,
        shape=shape,
        elements=st.floats(-1e6, 1e6, allow_nan=False, width=64),
    )
)

_rel_bounds = st.floats(1e-5, 0.09)


def _abs_bound(data: np.ndarray, rel: float) -> float:
    spread = float(np.ptp(data))
    if spread == 0:
        spread = max(abs(float(data.flat[0])), 1.0)
    return max(rel * spread, 1e-12)


@pytest.mark.parametrize("name", ["sz", "sz2", "zfp", "mgard"])
class TestAbsBoundProperty:
    @given(data=_fields, rel=_rel_bounds)
    @settings(max_examples=25, deadline=None)
    def test_bound_always_respected(self, name, data, rel):
        comp = get_compressor(name)
        bound = _abs_bound(data, rel)
        recon, blob = comp.roundtrip(data, bound)
        comp.verify(data, recon, blob.config)

    @given(data=_fields, rel=_rel_bounds)
    @settings(max_examples=15, deadline=None)
    def test_blob_is_self_contained(self, name, data, rel):
        comp = get_compressor(name)
        bound = _abs_bound(data, rel)
        blob = comp.compress(data, bound)
        fresh = get_compressor(name)
        recon = fresh.decompress(blob)
        assert recon.shape == data.shape


class TestFPZIPProperty:
    @given(
        data=_shapes.flatmap(
            lambda shape: hnp.arrays(
                dtype=np.float32,
                shape=shape,
                elements=st.floats(-1e6, 1e6, allow_nan=False, width=32),
            )
        ),
        precision=st.integers(10, 32),
    )
    @settings(max_examples=25, deadline=None)
    def test_precision_contract(self, data, precision):
        comp = get_compressor("fpzip")
        recon, blob = comp.roundtrip(data, precision)
        comp.verify(data, recon, blob.config)


class TestDigitRoundingProperty:
    @given(
        data=_shapes.flatmap(
            lambda shape: hnp.arrays(
                dtype=np.float32,
                shape=shape,
                elements=st.floats(-1e6, 1e6, allow_nan=False, width=32),
            )
        ),
        digits=st.integers(1, 7),
    )
    @settings(max_examples=25, deadline=None)
    def test_digit_contract(self, data, digits):
        comp = get_compressor("digit")
        recon, blob = comp.roundtrip(data, digits)
        comp.verify(data, recon, blob.config)


class TestQuantizerProperty:
    @given(
        residuals=hnp.arrays(
            dtype=np.float64,
            shape=st.integers(1, 300),
            elements=st.floats(-1e8, 1e8, allow_nan=False),
        ),
        bound=st.floats(1e-6, 1e3),
    )
    @settings(max_examples=80, deadline=None)
    def test_non_outlier_error_bounded(self, residuals, bound):
        quantizer = LinearQuantizer(bound)
        result = quantizer.quantize(residuals)
        fine = ~result.outlier_mask
        if fine.any():
            err = np.abs(residuals[fine] - result.dequantized[fine])
            assert err.max() <= bound * (1 + 1e-12) + 1e-300


class TestLorenzoProperty:
    @given(
        data=_shapes.flatmap(
            lambda shape: hnp.arrays(
                dtype=np.int64,
                shape=shape,
                elements=st.integers(-(2**35), 2**35),
            )
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_residual_inverse_exact(self, data):
        assert np.array_equal(
            lorenzo_reconstruct(lorenzo_residuals(data)), data
        )
