"""Property-based tests: every lossless codec must round-trip exactly."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.encoding import (
    HuffmanCodec,
    LZCodec,
    RangeCoder,
    pack_fixed_width,
    rle_decode,
    rle_encode,
    unpack_fixed_width,
    zero_rle_decode,
    zero_rle_encode,
)
from repro.encoding.varint import decode_uvarint, encode_uvarint

_int_arrays = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(0, 400),
    elements=st.integers(-(2**40), 2**40),
)

_small_alphabet_arrays = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(0, 600),
    elements=st.integers(-4, 4),
)


class TestHuffmanProperties:
    @given(_int_arrays)
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_any_ints(self, symbols):
        codec = HuffmanCodec()
        assert np.array_equal(codec.decode(codec.encode(symbols)), symbols)

    @given(_small_alphabet_arrays)
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_small_alphabet(self, symbols):
        codec = HuffmanCodec()
        assert np.array_equal(codec.decode(codec.encode(symbols)), symbols)


class TestRangeCoderProperties:
    @given(_int_arrays)
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_any_ints(self, symbols):
        coder = RangeCoder()
        assert np.array_equal(coder.decode(coder.encode(symbols)), symbols)

    @given(_small_alphabet_arrays)
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_small_alphabet(self, symbols):
        coder = RangeCoder()
        assert np.array_equal(coder.decode(coder.encode(symbols)), symbols)


class TestRLEProperties:
    @given(_small_alphabet_arrays)
    @settings(max_examples=60, deadline=None)
    def test_generic_rle_roundtrip(self, symbols):
        values, runs = rle_encode(symbols)
        assert np.array_equal(rle_decode(values, runs), symbols)
        # Compression invariant: adjacent values always differ.
        if values.size > 1:
            assert (values[1:] != values[:-1]).all()

    @given(_small_alphabet_arrays)
    @settings(max_examples=60, deadline=None)
    def test_zero_rle_roundtrip(self, symbols):
        tokens, literals = zero_rle_encode(symbols)
        assert np.array_equal(zero_rle_decode(tokens, literals), symbols)
        assert (literals != 0).all()


class TestLZProperties:
    @given(st.binary(max_size=2000))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_any_bytes(self, data):
        codec = LZCodec()
        blob = codec.compress(data)
        assert codec.decompress(blob) == data
        assert len(blob) <= len(data) + 6  # never expands meaningfully


class TestBitPackingProperties:
    @given(
        hnp.arrays(
            dtype=np.uint64,
            shape=st.integers(0, 300),
            elements=st.integers(0, 2**20 - 1),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_fixed_width_roundtrip(self, values):
        buf = pack_fixed_width(values, 20)
        assert np.array_equal(unpack_fixed_width(buf, 20, values.size), values)


class TestVarintProperties:
    @given(st.lists(st.integers(0, 2**62), max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_concatenated_stream_roundtrip(self, values):
        blob = b"".join(encode_uvarint(v) for v in values)
        offset = 0
        decoded = []
        for _ in values:
            value, offset = decode_uvarint(blob, offset)
            decoded.append(value)
        assert decoded == values
        assert offset == len(blob)
