"""Property-based tests for the ML substrate."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ml.adaboost import AdaBoostRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import pearson_correlation
from repro.ml.tree import DecisionTreeRegressor

_datasets = st.integers(10, 80).flatmap(
    lambda n: st.tuples(
        hnp.arrays(
            dtype=np.float64,
            shape=(n, 3),
            elements=st.floats(-100, 100, allow_nan=False),
        ),
        hnp.arrays(
            dtype=np.float64,
            shape=(n,),
            elements=st.floats(-100, 100, allow_nan=False),
        ),
    )
)


class TestTreeProperties:
    @given(_datasets)
    @settings(max_examples=30, deadline=None)
    def test_predictions_within_target_hull(self, dataset):
        """A CART leaf averages targets, so predictions never leave
        the [min(y), max(y)] interval."""
        x, y = dataset
        tree = DecisionTreeRegressor(max_depth=6).fit(x, y)
        pred = tree.predict(x)
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9

    @given(_datasets)
    @settings(max_examples=20, deadline=None)
    def test_deterministic_without_subsampling(self, dataset):
        x, y = dataset
        p1 = DecisionTreeRegressor(max_depth=4).fit(x, y).predict(x)
        p2 = DecisionTreeRegressor(max_depth=4).fit(x, y).predict(x)
        assert np.array_equal(p1, p2)


class TestEnsembleProperties:
    @given(_datasets)
    @settings(max_examples=12, deadline=None)
    def test_forest_predictions_within_hull(self, dataset):
        x, y = dataset
        forest = RandomForestRegressor(
            n_estimators=5, max_depth=4, random_state=0
        ).fit(x, y)
        pred = forest.predict(x)
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9

    @given(_datasets)
    @settings(max_examples=8, deadline=None)
    def test_adaboost_predictions_within_hull(self, dataset):
        x, y = dataset
        model = AdaBoostRegressor(
            n_estimators=5, max_depth=3, random_state=0
        ).fit(x, y)
        pred = model.predict(x)
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9


class TestMetricProperties:
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(2, 200),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_pearson_bounded(self, a):
        rng = np.random.default_rng(0)
        b = a + rng.standard_normal(a.shape)
        r = pearson_correlation(a, b)
        assert -1.0 - 1e-12 <= r <= 1.0 + 1e-12

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(2, 100),
            elements=st.floats(-1e3, 1e3, allow_nan=False),
        ),
        st.floats(0.1, 5.0),
        st.floats(-10, 10),
    )
    @settings(max_examples=60, deadline=None)
    def test_pearson_affine_invariance(self, a, scale, shift):
        # Skip inputs whose spread underflows once shifted (the affine
        # map is then not faithfully representable in float64).
        assume(np.ptp(a) * scale > 1e-6 * max(1.0, abs(shift)))
        rng = np.random.default_rng(1)
        b = a + rng.standard_normal(a.shape)
        r1 = pearson_correlation(a, b)
        r2 = pearson_correlation(a * scale + shift, b)
        assert np.isclose(r1, r2, atol=1e-6)
