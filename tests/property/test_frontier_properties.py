"""Property-based tests for the Pareto frontier over (ratio, PSNR) points."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.objective import FrontierPoint, ParetoFrontier

pytestmark = pytest.mark.objective

_points = st.lists(
    st.builds(
        FrontierPoint,
        config=st.floats(1e-9, 1.0, allow_nan=False, allow_infinity=False),
        ratio=st.floats(1.0, 1e4, allow_nan=False, allow_infinity=False),
        psnr=st.floats(0.0, 200.0, allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=40,
)


class TestFrontierProperties:
    @given(_points)
    @settings(max_examples=120, deadline=None)
    def test_frontier_is_non_dominated(self, points):
        front = ParetoFrontier(points=tuple(points))
        for a in front.points:
            for b in front.points:
                if a is not b:
                    assert not a.dominates(b)

    @given(_points)
    @settings(max_examples=120, deadline=None)
    def test_frontier_is_cr_monotone(self, points):
        front = ParetoFrontier(points=tuple(points))
        ratios = [p.ratio for p in front]
        psnrs = [p.psnr for p in front]
        assert ratios == sorted(ratios)
        assert all(r1 < r2 for r1, r2 in zip(ratios, ratios[1:]))
        # Dominance pruning makes quality strictly decrease along the
        # curve: keeping more data must buy more fidelity.
        assert all(q1 > q2 for q1, q2 in zip(psnrs, psnrs[1:]))

    @given(_points, st.floats(1.0, 1e4, allow_nan=False))
    @settings(max_examples=120, deadline=None)
    def test_best_quality_matches_brute_force(self, points, min_ratio):
        """The one-call answer equals a brute-force scan of ALL swept points."""
        front = ParetoFrontier(points=tuple(points))
        answer = front.best_quality_at(min_ratio)
        eligible = [p for p in points if p.ratio >= min_ratio]
        if not eligible:
            assert answer is None
        else:
            assert answer is not None
            assert answer.ratio >= min_ratio
            assert answer.psnr == max(p.psnr for p in eligible)

    @given(_points, st.floats(0.0, 200.0, allow_nan=False))
    @settings(max_examples=120, deadline=None)
    def test_best_ratio_matches_brute_force(self, points, min_psnr):
        front = ParetoFrontier(points=tuple(points))
        answer = front.best_ratio_at(min_psnr)
        eligible = [p for p in points if p.psnr >= min_psnr]
        if not eligible:
            assert answer is None
        else:
            assert answer is not None
            assert answer.psnr >= min_psnr
            assert answer.ratio == max(p.ratio for p in eligible)

    @given(_points, st.floats(1.0, 9999.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_query_equals_direct_call(self, points, threshold):
        front = ParetoFrontier(points=tuple(points))
        expr = f"cr>={threshold:.3f}"
        assert front.query(expr) == front.best_quality_at(float(f"{threshold:.3f}"))
        expr = f"psnr>={min(threshold, 200.0):.3f}"
        assert front.query(expr) == front.best_ratio_at(
            float(f"{min(threshold, 200.0):.3f}")
        )

    @given(_points)
    @settings(max_examples=60, deadline=None)
    def test_idempotent(self, points):
        once = ParetoFrontier(points=tuple(points))
        twice = ParetoFrontier(points=once.points)
        assert once.points == twice.points
