"""Failure-injection tests: corrupted streams must fail *controlledly*.

Decoders fed damaged bytes must raise a :class:`ReproError` subclass
(or return wrong-but-well-formed data) — never an uncontrolled
exception type and never a hang. This guards every decode path against
the classic entropy-coder failure mode of trusting stream-carried
sizes.
"""

import numpy as np
import pytest

from repro.compressors import get_compressor
from repro.compressors.base import CompressedBlob
from repro.encoding import HuffmanCodec, LZCodec
from repro.errors import CorruptStreamError, InvalidConfiguration, ReproError

_ACCEPTABLE = (ReproError,)


def _mutations(data: bytes, rng: np.random.Generator, n: int):
    """Yield n deterministic corruptions of ``data``."""
    for _ in range(n):
        kind = rng.integers(0, 3)
        if len(data) < 4:
            yield data + b"\xff"
            continue
        if kind == 0:  # truncate
            cut = int(rng.integers(1, len(data)))
            yield data[:cut]
        elif kind == 1:  # flip bytes
            pos = rng.integers(0, len(data), size=min(4, len(data)))
            corrupted = bytearray(data)
            for p in pos:
                corrupted[p] ^= 0xFF
            yield bytes(corrupted)
        else:  # garbage prefix
            yield bytes(rng.integers(0, 256, 16).astype(np.uint8)) + data[16:]


class TestHuffmanCorruption:
    def test_controlled_failures(self, rng):
        codec = HuffmanCodec()
        blob = codec.encode(rng.integers(-50, 50, 5000))
        for mutated in _mutations(blob, np.random.default_rng(1), 40):
            try:
                codec.decode(mutated)
            except _ACCEPTABLE:
                pass  # the expected controlled failure


class TestRangeCoderCorruption:
    def test_controlled_failures(self, rng):
        from repro.encoding import RangeCoder

        coder = RangeCoder()
        blob = coder.encode(rng.integers(-20, 20, 3000))
        for mutated in _mutations(blob, np.random.default_rng(3), 40):
            try:
                coder.decode(mutated)
            except _ACCEPTABLE:
                pass


class TestLZCorruption:
    def test_controlled_failures(self, rng):
        codec = LZCodec()
        blob = codec.compress(b"abcdabcdabcd" * 200)
        for mutated in _mutations(blob, np.random.default_rng(2), 40):
            try:
                codec.decompress(mutated)
            except _ACCEPTABLE:
                pass


@pytest.mark.robustness
class TestPersistenceCorruption:
    """Fuzzed pipeline archives fail with typed errors only.

    The framed container (magic + version + length + CRC32) means any
    truncation or bit flip must surface as :class:`CorruptStreamError`
    or :class:`InvalidConfiguration` — never ``zipfile``/``struct``/
    ``KeyError`` internals leaking out of ``load_pipeline``.
    """

    _TYPED = (CorruptStreamError, InvalidConfiguration)

    @pytest.fixture(scope="class")
    def archive_bytes(self, tmp_path_factory):
        import repro
        from repro.core.persistence import save_pipeline
        from tests.conftest import small_forest_factory

        rng = np.random.default_rng(11)
        lin = np.linspace(0, 4 * np.pi, 16)
        x, y, z = np.meshgrid(lin, lin, lin, indexing="ij")
        data = (np.sin(x) * np.cos(y) + 0.05 * z).astype(np.float32)
        config = repro.FXRZConfig(stationary_points=6, augmented_samples=40)
        pipeline = repro.FXRZ(
            get_compressor("sz"), config=config,
            model_factory=small_forest_factory,
        )
        pipeline.fit([data + 0.02 * rng.standard_normal(data.shape)])
        path = tmp_path_factory.mktemp("fuzz") / "pipeline.npz"
        save_pipeline(pipeline, path)
        return path.read_bytes()

    def test_only_typed_errors_escape(self, archive_bytes, tmp_path):
        from repro.core.persistence import load_pipeline

        path = tmp_path / "mutated.npz"
        survivors = 0
        for mutated in _mutations(
            archive_bytes, np.random.default_rng(5), 40
        ):
            path.write_bytes(mutated)
            try:
                load_pipeline(path)
                survivors += 1  # CRC collision — astronomically unlikely
            except self._TYPED:
                pass  # the controlled failure this test demands
        assert survivors == 0

    def test_every_truncation_point_is_controlled(self, archive_bytes, tmp_path):
        from repro.core.persistence import load_pipeline

        path = tmp_path / "short.npz"
        for cut in np.linspace(0, len(archive_bytes) - 1, 25).astype(int):
            path.write_bytes(archive_bytes[:cut])
            with pytest.raises(self._TYPED):
                load_pipeline(path)

    def test_mid_frame_truncation_is_always_corrupt_stream(
        self, archive_bytes, tmp_path
    ):
        """Every strict prefix of a framed archive raises the frame error.

        The FXRZPIPE frame (magic + version + payload length + CRC32)
        promises that *any* truncation — inside the magic, inside the
        header fields, or anywhere in the payload — surfaces as
        :class:`CorruptStreamError` specifically, never as a zipfile
        guess over half-read bytes. Cut points cover every byte of the
        magic + header region exhaustively and a dense sweep of the
        payload.
        """
        from repro.core.persistence import load_pipeline

        assert archive_bytes.startswith(b"FXRZPIPE")
        header_region = range(0, 32)  # magic (8) + header (14) + margin
        body_region = np.linspace(
            32, len(archive_bytes) - 1, 128
        ).astype(int)
        path = tmp_path / "cut.npz"
        for cut in sorted({*header_region, *body_region}):
            path.write_bytes(archive_bytes[:cut])
            with pytest.raises(CorruptStreamError):
                load_pipeline(path)


@pytest.mark.robustness
class TestEncodedStreamCorruption:
    """Typed-error guarantee for the byte-stream codecs (RLE, LZ)."""

    def test_rle_token_corruption(self, rng):
        from repro.encoding.rle import zero_rle_decode, zero_rle_encode

        tokens, literals = zero_rle_encode(rng.integers(0, 3, 4000))
        corrupter = np.random.default_rng(9)
        for _ in range(40):
            bad_tokens = tokens.copy()
            idx = corrupter.integers(0, tokens.size)
            bad_tokens[idx] = int(corrupter.integers(-(2**40), 2**40))
            try:
                out = zero_rle_decode(bad_tokens, literals)
                assert out.size <= 2**28
            except _ACCEPTABLE:
                pass

    def test_lz_declared_size_lies(self, rng):
        from repro.encoding import LZCodec

        codec = LZCodec()
        blob = bytearray(codec.compress(b"xyzw" * 500))
        # Forge an implausibly large declared size in the varint header.
        blob[:2] = b"\xff\xff"
        with pytest.raises(_ACCEPTABLE):
            codec.decompress(bytes(blob))


@pytest.mark.parametrize("name,config", [
    ("sz", 0.01), ("sz2", 0.01), ("zfp", 0.01), ("mgard", 0.01),
    ("fpzip", 16), ("digit", 4),
])
class TestCompressorCorruption:
    def test_controlled_failures(self, smooth_field3d, name, config):
        comp = get_compressor(name)
        blob = comp.compress(smooth_field3d, config)
        mutator = np.random.default_rng(hash(name) % (2**31))
        for mutated in _mutations(blob.data, mutator, 25):
            damaged = CompressedBlob(
                data=mutated,
                original_shape=blob.original_shape,
                original_dtype=blob.original_dtype,
                compressor=blob.compressor,
                config=blob.config,
            )
            try:
                out = comp.decompress(damaged)
                # Wrong data is tolerable; wrong *shape* is not.
                assert out.shape == smooth_field3d.shape
            except _ACCEPTABLE:
                pass
