"""Failure-injection tests: corrupted streams must fail *controlledly*.

Decoders fed damaged bytes must raise a :class:`ReproError` subclass
(or return wrong-but-well-formed data) — never an uncontrolled
exception type and never a hang. This guards every decode path against
the classic entropy-coder failure mode of trusting stream-carried
sizes.
"""

import numpy as np
import pytest

from repro.compressors import get_compressor
from repro.compressors.base import CompressedBlob
from repro.encoding import HuffmanCodec, LZCodec
from repro.errors import ReproError

_ACCEPTABLE = (ReproError,)


def _mutations(data: bytes, rng: np.random.Generator, n: int):
    """Yield n deterministic corruptions of ``data``."""
    for _ in range(n):
        kind = rng.integers(0, 3)
        if len(data) < 4:
            yield data + b"\xff"
            continue
        if kind == 0:  # truncate
            cut = int(rng.integers(1, len(data)))
            yield data[:cut]
        elif kind == 1:  # flip bytes
            pos = rng.integers(0, len(data), size=min(4, len(data)))
            corrupted = bytearray(data)
            for p in pos:
                corrupted[p] ^= 0xFF
            yield bytes(corrupted)
        else:  # garbage prefix
            yield bytes(rng.integers(0, 256, 16).astype(np.uint8)) + data[16:]


class TestHuffmanCorruption:
    def test_controlled_failures(self, rng):
        codec = HuffmanCodec()
        blob = codec.encode(rng.integers(-50, 50, 5000))
        for mutated in _mutations(blob, np.random.default_rng(1), 40):
            try:
                codec.decode(mutated)
            except _ACCEPTABLE:
                pass  # the expected controlled failure


class TestRangeCoderCorruption:
    def test_controlled_failures(self, rng):
        from repro.encoding import RangeCoder

        coder = RangeCoder()
        blob = coder.encode(rng.integers(-20, 20, 3000))
        for mutated in _mutations(blob, np.random.default_rng(3), 40):
            try:
                coder.decode(mutated)
            except _ACCEPTABLE:
                pass


class TestLZCorruption:
    def test_controlled_failures(self, rng):
        codec = LZCodec()
        blob = codec.compress(b"abcdabcdabcd" * 200)
        for mutated in _mutations(blob, np.random.default_rng(2), 40):
            try:
                codec.decompress(mutated)
            except _ACCEPTABLE:
                pass


@pytest.mark.parametrize("name,config", [
    ("sz", 0.01), ("sz2", 0.01), ("zfp", 0.01), ("mgard", 0.01),
    ("fpzip", 16), ("digit", 4),
])
class TestCompressorCorruption:
    def test_controlled_failures(self, smooth_field3d, name, config):
        comp = get_compressor(name)
        blob = comp.compress(smooth_field3d, config)
        mutator = np.random.default_rng(hash(name) % (2**31))
        for mutated in _mutations(blob.data, mutator, 25):
            damaged = CompressedBlob(
                data=mutated,
                original_shape=blob.original_shape,
                original_dtype=blob.original_dtype,
                compressor=blob.compressor,
                config=blob.config,
            )
            try:
                out = comp.decompress(damaged)
                # Wrong data is tolerable; wrong *shape* is not.
                assert out.shape == smooth_field3d.shape
            except _ACCEPTABLE:
                pass
