"""Fused-vs-reference kernel parity: the batched path must be bit-identical.

The ``"numpy"`` kernel backend fuses predict→quantize→code-emit into
in-place vector passes over arena scratch; the ``"reference"`` backend
reproduces the original unfused semantics through
:class:`~repro.compressors.quantizer.LinearQuantizer`. Their contract is
bit-identity — same blob *bytes*, same reconstruction — across every
rank, entropy codec and error-bound regime the SZ family supports.
These tests pin that contract; any fused shortcut that changes a single
rounding decision fails here first.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressors import (
    CompressionStream,
    KernelArena,
    get_compressor,
    use_kernel_backend,
)
from repro.compressors.sz import SZCompressor

pytestmark = pytest.mark.kernels


@pytest.fixture(scope="module")
def fields():
    rng = np.random.default_rng(11)
    lin = np.linspace(0, 2 * np.pi, 4096)
    field1d = (np.sin(3 * lin) + 0.05 * rng.standard_normal(4096)).astype(
        np.float32
    )
    lin = np.linspace(0, 2 * np.pi, 48)
    x, y = np.meshgrid(lin, lin, indexing="ij")
    field2d = (np.cos(x) * np.sin(2 * y)).astype(np.float64)
    lin = np.linspace(0, 2 * np.pi, 18)
    x, y, z = np.meshgrid(lin, lin, lin, indexing="ij")
    field3d = (
        np.sin(x) * np.cos(y + z) + 0.02 * rng.standard_normal((18, 18, 18))
    ).astype(np.float32)
    return {"1d": field1d, "2d": field2d, "3d": field3d}


def _blob_and_recon(compressor, data, eb, backend):
    with use_kernel_backend(backend):
        blob = compressor.compress(data, eb)
        recon = compressor.decompress(blob)
    return blob, recon


@pytest.mark.parametrize("name", ["sz", "sz2"])
@pytest.mark.parametrize("rank", ["1d", "2d", "3d"])
@pytest.mark.parametrize("eb", [1e-2, 1e-4])
def test_fused_blob_bytes_match_reference(fields, name, rank, eb):
    data = fields[rank]
    compressor = get_compressor(name)
    blob_n, recon_n = _blob_and_recon(compressor, data, eb, "numpy")
    blob_r, recon_r = _blob_and_recon(compressor, data, eb, "reference")
    assert blob_n.data == blob_r.data
    np.testing.assert_array_equal(recon_n, recon_r)
    compressor.verify(data, recon_n, eb)


@pytest.mark.parametrize("entropy", ["huffman", "range", "chunked"])
def test_parity_holds_for_every_entropy_codec(fields, entropy):
    data = fields["2d"]
    compressor = SZCompressor(entropy=entropy)
    blob_n, recon_n = _blob_and_recon(compressor, data, 1e-3, "numpy")
    blob_r, recon_r = _blob_and_recon(compressor, data, 1e-3, "reference")
    assert blob_n.data == blob_r.data
    np.testing.assert_array_equal(recon_n, recon_r)


def test_parity_with_tiny_error_bound_outlier_heavy(fields):
    # A tiny eb pushes many residuals past the code range: the outlier
    # path (sentinel codes + verbatim values) must also match exactly.
    data = fields["3d"]
    compressor = SZCompressor(quant_width=4)
    blob_n, recon_n = _blob_and_recon(compressor, data, 1e-7, "numpy")
    blob_r, recon_r = _blob_and_recon(compressor, data, 1e-7, "reference")
    assert blob_n.data == blob_r.data
    np.testing.assert_array_equal(recon_n, recon_r)


def test_parity_on_constant_block():
    data = np.full((32, 32), 3.25, dtype=np.float64)
    compressor = get_compressor("sz")
    blob_n, recon_n = _blob_and_recon(compressor, data, 1e-5, "numpy")
    blob_r, recon_r = _blob_and_recon(compressor, data, 1e-5, "reference")
    assert blob_n.data == blob_r.data
    np.testing.assert_array_equal(recon_n, data)
    np.testing.assert_array_equal(recon_r, data)


@pytest.mark.parametrize("name", ["sz", "sz2"])
def test_stream_reuse_is_bit_identical_to_cold_calls(fields, name):
    # The same arena carries scratch across timesteps; buffer reuse
    # must never leak state between arrays of different shapes/content.
    compressor = get_compressor(name)
    stream = CompressionStream(compressor)
    for rank in ("3d", "1d", "2d", "3d"):
        data = fields[rank]
        warm = stream.compress(data, 1e-3)
        cold = compressor.compress(data, 1e-3)
        assert warm.data == cold.data
        np.testing.assert_array_equal(
            stream.decompress(warm), compressor.decompress(cold)
        )
    assert stream.stats.reuses > 0


def test_stream_decode_after_shrinking_shapes(fields):
    # Decoding a small blob with an arena grown by a larger one must
    # not read stale bytes beyond the logical view.
    compressor = get_compressor("sz")
    arena = KernelArena()
    stream = compressor.compress_stream(arena=arena)
    big = stream.compress(fields["3d"], 1e-3)
    small = stream.compress(fields["1d"][:257], 1e-3)
    np.testing.assert_array_equal(
        stream.decompress(small),
        compressor.decompress(small),
    )
    np.testing.assert_array_equal(
        stream.decompress(big), compressor.decompress(big)
    )


def test_quant_width_parity_and_header_roundtrip(fields):
    data = fields["2d"]
    for width in (2, 8, 22):
        compressor = SZCompressor(entropy="chunked", quant_width=width)
        blob_n, recon_n = _blob_and_recon(compressor, data, 1e-3, "numpy")
        blob_r, recon_r = _blob_and_recon(compressor, data, 1e-3, "reference")
        assert blob_n.data == blob_r.data
        np.testing.assert_array_equal(recon_n, recon_r)
        compressor.verify(data, recon_n, 1e-3)
