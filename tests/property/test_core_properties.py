"""Property-based tests for features, adjustment and curve inversion."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.adjustment import adjusted_ratio, nonconstant_fraction
from repro.core.augmentation import CompressionCurve
from repro.core.features import extract_features

_fields = st.sampled_from([(20,), (9, 11), (6, 7, 8)]).flatmap(
    lambda shape: hnp.arrays(
        dtype=np.float64,
        shape=shape,
        elements=st.floats(-1e4, 1e4, allow_nan=False),
    )
)


class TestFeatureProperties:
    @given(_fields)
    @settings(max_examples=60, deadline=None)
    def test_features_finite_and_nonnegative(self, data):
        features = extract_features(data)
        vector = features.all_features()
        assert np.all(np.isfinite(vector))
        # All but mean_value (index 1) are magnitudes.
        assert features.value_range >= 0
        assert features.mnd >= 0
        assert features.mld >= 0
        assert features.msd >= 0
        assert features.min_gradient <= features.max_gradient

    @given(_fields, st.floats(-100, 100))
    @settings(max_examples=40, deadline=None)
    def test_shift_invariance_of_smoothness(self, data, shift):
        """MND/MLD/MSD measure *differences*: constant shifts cancel."""
        base = extract_features(data)
        shifted = extract_features(data + shift)
        assert np.isclose(base.mnd, shifted.mnd, rtol=1e-6, atol=1e-6)
        assert np.isclose(base.value_range, shifted.value_range, rtol=1e-6, atol=1e-6)

    @given(_fields, st.floats(0.1, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_scale_equivariance(self, data, scale):
        base = extract_features(data)
        scaled = extract_features(data * scale)
        assert np.isclose(
            scaled.value_range, base.value_range * scale, rtol=1e-6, atol=1e-6
        )
        assert np.isclose(scaled.mnd, base.mnd * scale, rtol=1e-6, atol=1e-6)


class TestAdjustmentProperties:
    @given(_fields)
    @settings(max_examples=60, deadline=None)
    def test_fraction_in_unit_interval(self, data):
        r = nonconstant_fraction(data)
        assert 0.0 <= r <= 1.0

    @given(st.floats(0.1, 1e4), st.floats(1e-9, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_acr_never_exceeds_tcr(self, tcr, r):
        # R = 0 (all-constant dataset) is rejected outright, so the
        # clamp property only holds on positive fractions.
        acr = adjusted_ratio(tcr, r)
        assert acr <= max(tcr, 1.0) + 1e-9
        assert acr >= 1.0


class TestCurveProperties:
    @given(
        st.lists(
            st.floats(1.5, 500.0), min_size=3, max_size=20, unique=True
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_inversion_lands_inside_domain(self, ratios):
        ratios = sorted(ratios)
        configs = np.logspace(-5, -1, len(ratios))
        curve = CompressionCurve(
            configs=configs,
            ratios=np.array(ratios),
            log_config=True,
            build_seconds=0.0,
        )
        lo, hi = curve.ratio_range
        for target in np.linspace(lo, hi, 7):
            config = curve.config_for_ratio(float(target))
            assert configs[0] <= config <= configs[-1]

    @given(st.integers(1, 200))
    @settings(max_examples=30, deadline=None)
    def test_sample_size_respected(self, n):
        curve = CompressionCurve(
            configs=np.array([1e-4, 1e-3, 1e-2]),
            ratios=np.array([2.0, 5.0, 20.0]),
            log_config=True,
            build_seconds=0.0,
        )
        ratios, configs = curve.sample(n, seed=0)
        assert ratios.size == configs.size == n
