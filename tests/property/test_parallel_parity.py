"""Serial-vs-parallel parity: every hot path must be bit-identical.

The executor's whole contract is that ``n_jobs`` changes the wall
clock, never the numbers: sweeps assemble in config order, the forest
draws its seeds serially before fanning out and reduces predictions in
tree order, FRaZ's prefetch only relocates where probes are computed,
and tiles are independent by construction. These tests pin that
contract at n_jobs=4 against the serial reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.fraz import FRaZ
from repro.compressors import get_compressor
from repro.config import FXRZConfig
from repro.core.augmentation import build_curve
from repro.core.pipeline import FXRZ
from repro.core.tiling import TiledFixedRatio
from repro.ml.forest import RandomForestRegressor
from repro.parallel import CompressionMemoCache, ParallelExecutor

from tests.conftest import small_forest_factory

pytestmark = pytest.mark.parallel


@pytest.fixture(scope="module")
def field():
    lin = np.linspace(0, 4 * np.pi, 20)
    x, y, z = np.meshgrid(lin, lin, lin, indexing="ij")
    noise = np.random.default_rng(3).standard_normal((20, 20, 20))
    return (np.sin(x) * np.cos(y + z) + 0.02 * noise).astype(np.float32)


@pytest.fixture(scope="module")
def executor4():
    return ParallelExecutor(n_jobs=4, backend="process")


class TestSweepParity:
    def test_build_curve_identical_at_four_workers(self, field, executor4):
        sz = get_compressor("sz")
        serial = build_curve(sz, field, n_points=6)
        parallel = build_curve(sz, field, n_points=6, executor=executor4)
        np.testing.assert_array_equal(parallel.configs, serial.configs)
        np.testing.assert_array_equal(parallel.ratios, serial.ratios)
        assert parallel.log_config == serial.log_config

    def test_memo_warmed_curve_identical(self, field, executor4):
        sz = get_compressor("sz")
        memo = CompressionMemoCache()
        cold = build_curve(sz, field, n_points=6, executor=executor4, memo=memo)
        warm = build_curve(sz, field, n_points=6, memo=memo)
        np.testing.assert_array_equal(warm.ratios, cold.ratios)
        assert memo.hits >= 6  # the second sweep never ran the compressor
        assert warm.build_seconds == cold.build_seconds  # recorded seconds


class TestForestParity:
    def test_fit_and_predict_identical(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(120, 6))
        y = x @ rng.normal(size=6) + 0.1 * rng.normal(size=120)
        serial = RandomForestRegressor(
            n_estimators=12, random_state=9, min_samples_leaf=2
        ).fit(x, y)
        parallel = RandomForestRegressor(
            n_estimators=12, random_state=9, min_samples_leaf=2, n_jobs=4
        ).fit(x, y)
        queries = rng.normal(size=(30, 6))
        np.testing.assert_array_equal(
            parallel.predict(queries), serial.predict(queries)
        )
        # parallel predict over a serially fitted forest, too
        np.testing.assert_array_equal(
            serial.predict(queries, n_jobs=4), serial.predict(queries)
        )


class TestFRaZParity:
    def test_search_trace_identical_with_executor(self, field, executor4):
        sz = get_compressor("sz")
        serial = FRaZ(sz, max_iterations=6).search(field, 20.0)
        parallel = FRaZ(sz, max_iterations=6, executor=executor4).search(
            field, 20.0
        )
        assert parallel.evaluations == serial.evaluations
        assert parallel.config == serial.config
        assert parallel.measured_ratio == serial.measured_ratio
        assert parallel.iterations == serial.iterations


class TestTiledParity:
    @pytest.fixture(scope="class")
    def pipeline(self, field):
        fxrz = FXRZ(
            get_compressor("sz"),
            config=FXRZConfig(stationary_points=6, augmented_samples=40),
            model_factory=small_forest_factory,
        )
        fxrz.fit([field])
        return fxrz

    def test_tiles_identical_at_four_workers(self, pipeline, field):
        serial = TiledFixedRatio(pipeline, (10, 10, 10)).compress(field, 15.0)
        parallel = TiledFixedRatio(pipeline, (10, 10, 10), n_jobs=4).compress(
            field, 15.0
        )
        assert len(parallel.tiles) == len(serial.tiles)
        for ser, par in zip(serial.tiles, parallel.tiles):
            assert par.index == ser.index
            assert par.slices == ser.slices
            assert par.blob.config == ser.blob.config
            assert par.blob.data == ser.blob.data
        assert parallel.measured_ratio == serial.measured_ratio
