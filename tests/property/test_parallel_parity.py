"""Serial-vs-parallel parity: every hot path must be bit-identical.

The executor's whole contract is that ``n_jobs`` changes the wall
clock, never the numbers: sweeps assemble in config order, the forest
draws its seeds serially before fanning out and reduces predictions in
tree order, FRaZ's prefetch only relocates where probes are computed,
and tiles are independent by construction. These tests pin that
contract at n_jobs=4 against the serial reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.fraz import FRaZ
from repro.compressors import get_compressor
from repro.config import FXRZConfig
from repro.core.augmentation import build_curve
from repro.core.pipeline import FXRZ
from repro.core.tiling import TiledFixedRatio
from repro.ml.forest import RandomForestRegressor
from repro.parallel import CompressionMemoCache, ParallelExecutor

from tests.conftest import small_forest_factory

pytestmark = pytest.mark.parallel


@pytest.fixture(scope="module")
def field():
    lin = np.linspace(0, 4 * np.pi, 20)
    x, y, z = np.meshgrid(lin, lin, lin, indexing="ij")
    noise = np.random.default_rng(3).standard_normal((20, 20, 20))
    return (np.sin(x) * np.cos(y + z) + 0.02 * noise).astype(np.float32)


@pytest.fixture(scope="module")
def executor4():
    return ParallelExecutor(n_jobs=4, backend="process")


class TestSweepParity:
    def test_build_curve_identical_at_four_workers(self, field, executor4):
        sz = get_compressor("sz")
        serial = build_curve(sz, field, n_points=6)
        parallel = build_curve(sz, field, n_points=6, executor=executor4)
        np.testing.assert_array_equal(parallel.configs, serial.configs)
        np.testing.assert_array_equal(parallel.ratios, serial.ratios)
        assert parallel.log_config == serial.log_config

    def test_memo_warmed_curve_identical(self, field, executor4):
        sz = get_compressor("sz")
        memo = CompressionMemoCache()
        cold = build_curve(sz, field, n_points=6, executor=executor4, memo=memo)
        warm = build_curve(sz, field, n_points=6, memo=memo)
        np.testing.assert_array_equal(warm.ratios, cold.ratios)
        assert memo.hits >= 6  # the second sweep never ran the compressor
        assert warm.build_seconds == cold.build_seconds  # recorded seconds


class TestForestParity:
    def test_fit_and_predict_identical(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(120, 6))
        y = x @ rng.normal(size=6) + 0.1 * rng.normal(size=120)
        serial = RandomForestRegressor(
            n_estimators=12, random_state=9, min_samples_leaf=2
        ).fit(x, y)
        parallel = RandomForestRegressor(
            n_estimators=12, random_state=9, min_samples_leaf=2, n_jobs=4
        ).fit(x, y)
        queries = rng.normal(size=(30, 6))
        np.testing.assert_array_equal(
            parallel.predict(queries), serial.predict(queries)
        )
        # parallel predict over a serially fitted forest, too
        np.testing.assert_array_equal(
            serial.predict(queries, n_jobs=4), serial.predict(queries)
        )


class TestFRaZParity:
    def test_search_trace_identical_with_executor(self, field, executor4):
        sz = get_compressor("sz")
        serial = FRaZ(sz, max_iterations=6).search(field, 20.0)
        parallel = FRaZ(sz, max_iterations=6, executor=executor4).search(
            field, 20.0
        )
        assert parallel.evaluations == serial.evaluations
        assert parallel.config == serial.config
        assert parallel.measured_ratio == serial.measured_ratio
        assert parallel.iterations == serial.iterations


class TestTiledParity:
    @pytest.fixture(scope="class")
    def pipeline(self, field):
        fxrz = FXRZ(
            get_compressor("sz"),
            config=FXRZConfig(stationary_points=6, augmented_samples=40),
            model_factory=small_forest_factory,
        )
        fxrz.fit([field])
        return fxrz

    def test_tiles_identical_at_four_workers(self, pipeline, field):
        serial = TiledFixedRatio(pipeline, (10, 10, 10)).compress(field, 15.0)
        parallel = TiledFixedRatio(pipeline, (10, 10, 10), n_jobs=4).compress(
            field, 15.0
        )
        assert len(parallel.tiles) == len(serial.tiles)
        for ser, par in zip(serial.tiles, parallel.tiles):
            assert par.index == ser.index
            assert par.slices == ser.slices
            assert par.blob.config == ser.blob.config
            assert par.blob.data == ser.blob.data
        assert parallel.measured_ratio == serial.measured_ratio


def _explode(task, arrays, context):  # pragma: no cover - runs in workers
    raise RuntimeError(f"task {task} failed")


def _report_worker_runtime(task, arrays, context):  # pragma: no cover - workers
    from repro.runtime import current_context

    ctx = current_context()
    if ctx is None:
        return None
    return (ctx.config.seed, ctx.config.jobs, tuple(ctx.derive_seeds(3)))


@pytest.mark.runtime
class TestRuntimeContextParity:
    """The ctx= path must honor the same bit-identity contract.

    A RuntimeContext only *routes* the executor/memo into the layers;
    it must not perturb a single number relative to the serial
    reference, and its spec must hand workers the exact seed the driver
    derives from.
    """

    def test_curve_identical_through_context(self, field):
        from repro.runtime import RuntimeContext

        sz = get_compressor("sz")
        serial = build_curve(sz, field, n_points=6)
        with RuntimeContext(env={}, jobs=4) as ctx:
            parallel = build_curve(sz, field, n_points=6, ctx=ctx)
        np.testing.assert_array_equal(parallel.configs, serial.configs)
        np.testing.assert_array_equal(parallel.ratios, serial.ratios)
        assert parallel.log_config == serial.log_config

    def test_forest_identical_through_context(self, field):
        from repro.runtime import RuntimeContext

        config = FXRZConfig(stationary_points=6, augmented_samples=40)

        def fit(ctx):
            fxrz = FXRZ(
                get_compressor("sz"),
                config=config,
                model_factory=small_forest_factory,
                ctx=ctx,
            )
            fxrz.fit([field])
            return fxrz

        with RuntimeContext(env={}, jobs=1) as serial_ctx:
            serial = fit(serial_ctx)
        with RuntimeContext(env={}, jobs=4) as parallel_ctx:
            parallel = fit(parallel_ctx)
        estimate_s = serial.estimate_config(field, 15.0)
        estimate_p = parallel.estimate_config(field, 15.0)
        assert estimate_p.config == estimate_s.config
        assert estimate_p.adjusted_target == estimate_s.adjusted_target

    def test_fraz_identical_through_context(self, field):
        from repro.runtime import RuntimeContext

        sz = get_compressor("sz")
        serial = FRaZ(sz, max_iterations=6).search(field, 20.0)
        with RuntimeContext(env={}, jobs=4) as ctx:
            parallel = FRaZ(sz, max_iterations=6, ctx=ctx).search(field, 20.0)
        assert parallel.evaluations == serial.evaluations
        assert parallel.config == serial.config
        assert parallel.measured_ratio == serial.measured_ratio

    def test_workers_see_child_context_with_driver_seed(self, field):
        from repro.runtime import RuntimeContext, current_context

        assert current_context() is None  # drivers have no worker context
        # backend pinned: "auto" collapses jobs=2 to serial (executor
        # None) on 1-CPU hosts, and this test is about process workers.
        with RuntimeContext(env={}, jobs=2, seed=987, backend="process") as ctx:
            expected = tuple(ctx.derive_seeds(3))
            reports = ctx.executor.map(_report_worker_runtime, [0, 1])
        assert reports == [(987, 1, expected)] * 2
        assert current_context() is None  # nothing leaked into the driver


@pytest.mark.runtime
@pytest.mark.obs
class TestRuntimeSpanParity:
    """Worker spans re-parent identically when the tracer rides a ctx."""

    def test_ctx_driven_sweep_matches_serial_shape(self, field):
        from repro import obs
        from repro.runtime import RuntimeContext

        sz = get_compressor("sz")

        def sweep(jobs):
            # A ctx with jobs=1 has no executor (sweeps run inline with
            # no parallel.map span), so the serial reference borrows an
            # n_jobs=1 executor to keep the tree shapes comparable.
            tracer = obs.Tracer()
            if jobs == 1:
                extra = {"executor": ParallelExecutor(n_jobs=1, backend="process")}
            else:
                # backend pinned: "auto" would collapse to serial on
                # 1-CPU hosts and drop the parallel.map span this
                # shape comparison expects.
                extra = {"jobs": jobs, "backend": "process"}
            with RuntimeContext(env={}, tracer=tracer, **extra) as ctx:
                build_curve(sz, field, n_points=6, ctx=ctx)
            return tracer.spans

        serial_spans = sweep(1)
        pool_spans = sweep(4)
        assert obs.tree_shape(pool_spans) == obs.tree_shape(serial_spans)
        assert len(pool_spans) == len(serial_spans)
        compress_spans = [
            s for s in pool_spans if s.name == "compressor.compress"
        ]
        assert len(compress_spans) == 6
        driver_pid = next(s.pid for s in pool_spans if s.name == "parallel.map")
        assert any(s.pid != driver_pid for s in compress_spans)
        assert len({s.trace_id for s in pool_spans}) == 1


@pytest.mark.obs
class TestSpanTreeParity:
    """Cross-process span re-parenting: the trace must not depend on n_jobs.

    A process-pool sweep records its per-task compressor spans in the
    workers, ships them back with the results, and re-parents them under
    the driver's ``parallel.map`` span — so serial and 4-worker runs of
    the same sweep must produce the same span tree *shape* (sibling
    order aside, which worker scheduling legitimately permutes).
    """

    def _sweep_shape(self, field, jobs):
        from repro import obs

        sz = get_compressor("sz")
        with obs.session() as (tracer, _registry):
            executor = ParallelExecutor(n_jobs=jobs, backend="process")
            build_curve(sz, field, n_points=6, executor=executor)
            spans = tracer.spans
        return spans, obs.tree_shape(spans)

    def test_process_pool_sweep_matches_serial_shape(self, field):
        serial_spans, serial_shape = self._sweep_shape(field, 1)
        pool_spans, pool_shape = self._sweep_shape(field, 4)
        assert pool_shape == serial_shape
        # Same span population too, not just a coincidentally equal tree.
        assert len(pool_spans) == len(serial_spans)
        compress_spans = [
            s for s in pool_spans if s.name == "compressor.compress"
        ]
        assert len(compress_spans) == 6
        # The pool run's compressor spans really came from workers and
        # were re-parented into the driver's trace.
        driver_pid = next(
            s.pid for s in pool_spans if s.name == "parallel.map"
        )
        assert any(s.pid != driver_pid for s in compress_spans)
        # One logical operation, one trace id — worker spans included.
        assert len({s.trace_id for s in pool_spans}) == 1

    def test_worker_failure_marks_map_span(self, field):
        from repro import obs

        with obs.session() as (tracer, _registry):
            executor = ParallelExecutor(n_jobs=4, backend="process")
            with pytest.raises(RuntimeError):
                executor.map(_explode, [1, 2, 3, 4])
            [map_span] = [
                s for s in tracer.spans if s.name == "parallel.map"
            ]
        assert map_span.status == "error"
        assert "RuntimeError" in map_span.error
