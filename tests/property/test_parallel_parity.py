"""Serial-vs-parallel parity: every hot path must be bit-identical.

The executor's whole contract is that ``n_jobs`` changes the wall
clock, never the numbers: sweeps assemble in config order, the forest
draws its seeds serially before fanning out and reduces predictions in
tree order, FRaZ's prefetch only relocates where probes are computed,
and tiles are independent by construction. These tests pin that
contract at n_jobs=4 against the serial reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.fraz import FRaZ
from repro.compressors import get_compressor
from repro.config import FXRZConfig
from repro.core.augmentation import build_curve
from repro.core.pipeline import FXRZ
from repro.core.tiling import TiledFixedRatio
from repro.ml.forest import RandomForestRegressor
from repro.parallel import CompressionMemoCache, ParallelExecutor

from tests.conftest import small_forest_factory

pytestmark = pytest.mark.parallel


@pytest.fixture(scope="module")
def field():
    lin = np.linspace(0, 4 * np.pi, 20)
    x, y, z = np.meshgrid(lin, lin, lin, indexing="ij")
    noise = np.random.default_rng(3).standard_normal((20, 20, 20))
    return (np.sin(x) * np.cos(y + z) + 0.02 * noise).astype(np.float32)


@pytest.fixture(scope="module")
def executor4():
    return ParallelExecutor(n_jobs=4, backend="process")


class TestSweepParity:
    def test_build_curve_identical_at_four_workers(self, field, executor4):
        sz = get_compressor("sz")
        serial = build_curve(sz, field, n_points=6)
        parallel = build_curve(sz, field, n_points=6, executor=executor4)
        np.testing.assert_array_equal(parallel.configs, serial.configs)
        np.testing.assert_array_equal(parallel.ratios, serial.ratios)
        assert parallel.log_config == serial.log_config

    def test_memo_warmed_curve_identical(self, field, executor4):
        sz = get_compressor("sz")
        memo = CompressionMemoCache()
        cold = build_curve(sz, field, n_points=6, executor=executor4, memo=memo)
        warm = build_curve(sz, field, n_points=6, memo=memo)
        np.testing.assert_array_equal(warm.ratios, cold.ratios)
        assert memo.hits >= 6  # the second sweep never ran the compressor
        assert warm.build_seconds == cold.build_seconds  # recorded seconds


class TestForestParity:
    def test_fit_and_predict_identical(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(120, 6))
        y = x @ rng.normal(size=6) + 0.1 * rng.normal(size=120)
        serial = RandomForestRegressor(
            n_estimators=12, random_state=9, min_samples_leaf=2
        ).fit(x, y)
        parallel = RandomForestRegressor(
            n_estimators=12, random_state=9, min_samples_leaf=2, n_jobs=4
        ).fit(x, y)
        queries = rng.normal(size=(30, 6))
        np.testing.assert_array_equal(
            parallel.predict(queries), serial.predict(queries)
        )
        # parallel predict over a serially fitted forest, too
        np.testing.assert_array_equal(
            serial.predict(queries, n_jobs=4), serial.predict(queries)
        )


class TestFRaZParity:
    def test_search_trace_identical_with_executor(self, field, executor4):
        sz = get_compressor("sz")
        serial = FRaZ(sz, max_iterations=6).search(field, 20.0)
        parallel = FRaZ(sz, max_iterations=6, executor=executor4).search(
            field, 20.0
        )
        assert parallel.evaluations == serial.evaluations
        assert parallel.config == serial.config
        assert parallel.measured_ratio == serial.measured_ratio
        assert parallel.iterations == serial.iterations


class TestTiledParity:
    @pytest.fixture(scope="class")
    def pipeline(self, field):
        fxrz = FXRZ(
            get_compressor("sz"),
            config=FXRZConfig(stationary_points=6, augmented_samples=40),
            model_factory=small_forest_factory,
        )
        fxrz.fit([field])
        return fxrz

    def test_tiles_identical_at_four_workers(self, pipeline, field):
        serial = TiledFixedRatio(pipeline, (10, 10, 10)).compress(field, 15.0)
        parallel = TiledFixedRatio(pipeline, (10, 10, 10), n_jobs=4).compress(
            field, 15.0
        )
        assert len(parallel.tiles) == len(serial.tiles)
        for ser, par in zip(serial.tiles, parallel.tiles):
            assert par.index == ser.index
            assert par.slices == ser.slices
            assert par.blob.config == ser.blob.config
            assert par.blob.data == ser.blob.data
        assert parallel.measured_ratio == serial.measured_ratio


def _explode(task, arrays, context):  # pragma: no cover - runs in workers
    raise RuntimeError(f"task {task} failed")


@pytest.mark.obs
class TestSpanTreeParity:
    """Cross-process span re-parenting: the trace must not depend on n_jobs.

    A process-pool sweep records its per-task compressor spans in the
    workers, ships them back with the results, and re-parents them under
    the driver's ``parallel.map`` span — so serial and 4-worker runs of
    the same sweep must produce the same span tree *shape* (sibling
    order aside, which worker scheduling legitimately permutes).
    """

    def _sweep_shape(self, field, jobs):
        from repro import obs

        sz = get_compressor("sz")
        with obs.session() as (tracer, _registry):
            executor = ParallelExecutor(n_jobs=jobs, backend="process")
            build_curve(sz, field, n_points=6, executor=executor)
            spans = tracer.spans
        return spans, obs.tree_shape(spans)

    def test_process_pool_sweep_matches_serial_shape(self, field):
        serial_spans, serial_shape = self._sweep_shape(field, 1)
        pool_spans, pool_shape = self._sweep_shape(field, 4)
        assert pool_shape == serial_shape
        # Same span population too, not just a coincidentally equal tree.
        assert len(pool_spans) == len(serial_spans)
        compress_spans = [
            s for s in pool_spans if s.name == "compressor.compress"
        ]
        assert len(compress_spans) == 6
        # The pool run's compressor spans really came from workers and
        # were re-parented into the driver's trace.
        driver_pid = next(
            s.pid for s in pool_spans if s.name == "parallel.map"
        )
        assert any(s.pid != driver_pid for s in compress_spans)
        # One logical operation, one trace id — worker spans included.
        assert len({s.trace_id for s in pool_spans}) == 1

    def test_worker_failure_marks_map_span(self, field):
        from repro import obs

        with obs.session() as (tracer, _registry):
            executor = ParallelExecutor(n_jobs=4, backend="process")
            with pytest.raises(RuntimeError):
                executor.map(_explode, [1, 2, 3, 4])
            [map_span] = [
                s for s in tracer.spans if s.name == "parallel.map"
            ]
        assert map_span.status == "error"
        assert "RuntimeError" in map_span.error
