"""Shared fixtures for the test suite.

Small grids keep the full suite fast: features, ratios and estimation
errors are size-intensive, so nothing about correctness depends on the
512^3 scale of the paper's originals.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import FXRZConfig
from repro.ml.forest import RandomForestRegressor


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(20230213)


@pytest.fixture(scope="session")
def smooth_field3d() -> np.ndarray:
    """A smooth, mildly noisy 3-D float32 field (compressor workhorse)."""
    lin = np.linspace(0, 4 * np.pi, 24)
    x, y, z = np.meshgrid(lin, lin, lin, indexing="ij")
    noise = np.random.default_rng(7).standard_normal((24, 24, 24))
    return (np.sin(x) * np.cos(y) * np.sin(z) + 0.05 * noise).astype(np.float32)


@pytest.fixture(scope="session")
def rough_field3d() -> np.ndarray:
    """A rough random-walk field exercising the outlier paths."""
    steps = np.random.default_rng(11).standard_normal((16, 16, 16))
    return np.cumsum(steps, axis=-1).astype(np.float64)


@pytest.fixture(scope="session")
def field2d() -> np.ndarray:
    lin = np.linspace(0, 2 * np.pi, 40)
    x, y = np.meshgrid(lin, lin, indexing="ij")
    return (np.sin(2 * x) + np.cos(3 * y)).astype(np.float64)


@pytest.fixture()
def fast_config() -> FXRZConfig:
    """An FXRZ configuration tuned for test speed."""
    return FXRZConfig(stationary_points=8, augmented_samples=60)


def small_forest_factory(seed: int) -> RandomForestRegressor:
    """A fast model factory for pipeline tests."""
    return RandomForestRegressor(
        n_estimators=10, min_samples_leaf=2, max_features=None, random_state=seed
    )


@pytest.fixture()
def fast_model_factory():
    return small_forest_factory
