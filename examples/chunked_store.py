#!/usr/bin/env python3
"""Use-case: a chunked scientific data store with a ratio floor.

Data libraries like HDF5 compress arrays as independent chunks. This
example trains one FXRZ pipeline, saves it to disk (the paper's
"training by one user benefits many" deployment), reloads it, and
compresses a new snapshot chunk-by-chunk: each chunk receives its own
error bound adapted to local content, while the aggregate compressed
size tracks the requested ratio.

Run:
    python examples/chunked_store.py [--quick]
"""

import argparse
import sys
import tempfile

import numpy as np

import repro
from repro.compressors import get_compressor
from repro.core.persistence import load_pipeline, save_pipeline
from repro.core.tiling import TiledFixedRatio
from repro.datasets import load_series


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--target-ratio", type=float, default=10.0)
    parser.add_argument("--tile", type=int, default=16, help="tile edge length")
    args = parser.parse_args(argv)

    # Train once on *tiles* of the Nyx config-1 snapshots — inference
    # will also see tiles, and a model generalizes best at the
    # granularity it will serve — then persist the model.
    config = repro.FXRZConfig(
        stationary_points=8 if args.quick else 20,
        augmented_samples=60 if args.quick else 200,
    )
    pipeline = repro.FXRZ(get_compressor("sz"), config=config)
    snapshots = [s.data for s in load_series("nyx-1", "baryon_density")]
    snapshots = snapshots[:3] if args.quick else snapshots
    from repro.core.tiling import tile_grid

    rng = np.random.default_rng(0)
    train = []
    for snap in snapshots:
        grid = tile_grid(snap.shape, (args.tile,) * snap.ndim)
        picks = rng.choice(len(grid), size=min(4, len(grid)), replace=False)
        train.extend(np.ascontiguousarray(snap[grid[i][1]]) for i in picks)
    report = pipeline.fit(train)
    with tempfile.NamedTemporaryFile(suffix=".npz", delete=False) as handle:
        model_path = handle.name
    save_pipeline(pipeline, model_path)
    print(
        f"trained in {report.total_seconds:.1f}s and saved to {model_path}"
    )

    # A different user, a different process: load and use.
    restored = load_pipeline(model_path)
    snapshot = load_series("nyx-2", "baryon_density").snapshots[0].data
    store = TiledFixedRatio(restored, (args.tile,) * snapshot.ndim)
    result = store.compress(snapshot, args.target_ratio)

    configs = [t.blob.config for t in result.tiles]
    ratios = [t.blob.compression_ratio for t in result.tiles]
    print(
        f"\n{len(result.tiles)} tiles of {args.tile}^3: "
        f"per-tile configs span {min(configs):.3g}..{max(configs):.3g}, "
        f"ratios {min(ratios):.1f}..{max(ratios):.1f}"
    )
    print(
        f"aggregate: target {args.target_ratio:.1f}x -> measured "
        f"{result.measured_ratio:.1f}x (error {result.estimation_error:.1%})"
    )

    recon = store.decompress(result)
    err = float(np.max(np.abs(snapshot.astype(np.float64) - recon)))
    print(f"reconstruction max error {err:.3g} over range {np.ptp(snapshot):.3g}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
