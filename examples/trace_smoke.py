#!/usr/bin/env python3
"""Tracing smoke test: trace a CLI estimate, check the cost tree adds up.

The end-to-end path ``make trace-smoke`` exercises:

1. train a small pipeline on Gaussian random fields via the ``train``
   CLI, itself traced (so the trace file demonstrably survives a
   process's worth of spans);
2. render the training trace with ``repro obs-report`` (which also
   warms the CLI code path before anything is timed);
3. run ``repro estimate --trace`` on a larger held-out field;
4. load the span log back and assert the cost tree's total wall time
   agrees with the wall time measured around the CLI call to within
   5% — the tree must account for the run, not just decorate it. The
   held-out field is 64^3 so the traced work dwarfs the few ms of
   argument parsing that sit outside the root span.

Run:
    python examples/trace_smoke.py
"""

import pathlib
import sys
import tempfile
import time

import numpy as np

from repro import obs
from repro.cli import main as cli_main
from repro.datasets.grf import gaussian_random_field


def main(argv=None) -> int:
    fields = [
        gaussian_random_field((20, 20, 20), alpha=3.0, seed=seed).astype(
            np.float32
        )
        for seed in range(3)
    ]
    held_out = gaussian_random_field((64, 64, 64), alpha=3.0, seed=3).astype(
        np.float32
    )

    with tempfile.TemporaryDirectory(prefix="fxrz-trace-") as tmp:
        root = pathlib.Path(tmp)
        for i, field in enumerate(fields):
            np.save(root / f"field{i}.npy", field)
        np.save(root / "field3.npy", held_out)
        model = root / "model.npz"

        train_trace = root / "train-trace.jsonl"
        code = cli_main(
            [
                "train",
                *(str(root / f"field{i}.npy") for i in range(3)),
                "--model",
                str(model),
                "--stationary-points",
                "8",
                "--augmented-samples",
                "60",
                "--trace",
                str(train_trace),
            ]
        )
        if code != 0:
            print(f"train exited with {code}", file=sys.stderr)
            return 1
        assert train_trace.exists(), "train --trace wrote no file"
        code = cli_main(["obs-report", str(train_trace)])
        if code != 0:
            print(f"obs-report exited with {code}", file=sys.stderr)
            return 1

        estimate_trace = root / "estimate-trace.jsonl"
        tick = time.perf_counter()
        code = cli_main(
            [
                "estimate",
                str(root / "field3.npy"),
                "--model",
                str(model),
                "--ratio",
                "8.0",
                "--trace",
                str(estimate_trace),
            ]
        )
        wall = time.perf_counter() - tick
        if code != 0:
            print(f"estimate exited with {code}", file=sys.stderr)
            return 1

        spans = obs.load_trace(estimate_trace)
        assert spans, "estimate --trace recorded no spans"
        roots = [span for span in spans if span.parent_id is None]
        assert [span.name for span in roots] == ["cli.estimate"], (
            f"expected one cli.estimate root, got {roots}"
        )
        total = obs.cost_tree(spans)["wall_seconds"]
        drift = abs(total - wall) / wall
        assert drift < 0.05, (
            f"cost tree total {total:.3f}s disagrees with measured wall "
            f"{wall:.3f}s by {drift:.1%} (budget 5%)"
        )

        code = cli_main(["obs-report", str(estimate_trace)])
        if code != 0:
            print(f"obs-report exited with {code}", file=sys.stderr)
            return 1
        print(
            f"smoke OK: {len(spans)} spans, cost tree {total * 1e3:.1f}ms "
            f"vs wall {wall * 1e3:.1f}ms ({drift:.1%} apart)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
