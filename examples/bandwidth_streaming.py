#!/usr/bin/env python3
"""Use-case: stream instrument snapshots through a slow link.

The paper's first motivating scenario (Sec. III-B): an instrument emits
snapshots faster than the network can carry them raw, so every snapshot
must be compressed to at least ``raw_rate / link_rate`` before leaving
the node — and the configuration decision itself must be cheap enough
to run per snapshot. This example streams RTM wavefield snapshots and
compares FXRZ's per-snapshot decision cost against FRaZ's.

Run:
    python examples/bandwidth_streaming.py [--quick]
"""

import argparse
import sys
import time

import numpy as np

import repro
from repro.baselines import FRaZ
from repro.compressors import get_compressor
from repro.datasets import generate_rtm_snapshots, load_series


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument(
        "--ratio-needed",
        type=float,
        default=12.0,
        help="raw data rate divided by link bandwidth",
    )
    args = parser.parse_args(argv)

    # Train on the small-scale simulation (the paper's level-2 setup).
    train = [s.data for s in load_series("rtm-small", "pressure")]
    config = repro.FXRZConfig(
        stationary_points=10 if args.quick else 20,
        augmented_samples=80 if args.quick else 200,
    )
    pipeline = repro.FXRZ(get_compressor("sz"), config=config)
    report = pipeline.fit(train)
    print(f"trained once in {report.total_seconds:.1f}s (amortized across runs)")

    # Simulate the arriving stream: a *new* big-scale run.
    shape = (48, 48, 24) if args.quick else (72, 72, 32)
    steps = [40, 60, 80] if args.quick else [40, 55, 70, 85, 100]
    stream = generate_rtm_snapshots(shape, steps, seed=99)
    _, hi = pipeline.trained_ratio_range(stream[0][1])
    tcr = float(np.clip(args.ratio_needed, 2.0, hi * 0.8))
    print(f"link requires ratio >= {tcr:.1f}\n")

    print(f"{'step':>5} {'decide(ms)':>11} {'MCR':>7} {'meets link':>10} "
          f"{'FRaZ decide(ms)':>16}")
    fxrz_total = 0.0
    fraz_total = 0.0
    for step, snapshot in stream:
        tick = time.perf_counter()
        result = pipeline.compress_to_ratio(snapshot, tcr)
        fxrz_decide = result.estimate.analysis_seconds
        fxrz_total += fxrz_decide

        fraz = FRaZ(pipeline.compressor, max_iterations=15).search(snapshot, tcr)
        fraz_total += fraz.search_seconds

        meets = result.measured_ratio >= tcr * 0.8
        print(
            f"{step:5d} {fxrz_decide * 1e3:11.1f} {result.measured_ratio:7.1f} "
            f"{'yes' if meets else 'NO':>10} {fraz.search_seconds * 1e3:16.0f}"
        )

    print(
        f"\ntotal decision time: FXRZ {fxrz_total * 1e3:.0f}ms vs "
        f"FRaZ {fraz_total * 1e3:.0f}ms "
        f"({fraz_total / max(fxrz_total, 1e-9):.0f}x more)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
