#!/usr/bin/env python3
"""Serving smoke test: publish a model, push a JSONL batch, check output.

The end-to-end path ``make serve-smoke`` exercises:

1. train a small pipeline and publish it into a model registry;
2. write a JSONL request batch against two datasets;
3. serve the batch through the ``estimate-batch`` CLI (registry-backed,
   guarded engine) into a results file;
4. assert every request came back with a usable configuration.

Run:
    python examples/serve_smoke.py
"""

import json
import pathlib
import sys
import tempfile

import numpy as np

import repro
from repro.cli import main as cli_main
from repro.compressors import get_compressor
from repro.serving import ModelRegistry


def main(argv=None) -> int:
    rng = np.random.default_rng(0)
    lin = np.linspace(0, 4 * np.pi, 20)
    x, y, _ = np.meshgrid(lin, lin, lin, indexing="ij")
    fields = [
        (
            np.sin(x + 0.4 * i) * np.cos(y)
            + (0.02 + 0.01 * i) * rng.standard_normal((20,) * 3)
        ).astype(np.float32)
        for i in range(5)
    ]

    config = repro.FXRZConfig(stationary_points=8, augmented_samples=60)
    pipeline = repro.FXRZ(get_compressor("sz"), config=config)
    pipeline.fit(fields[:3])

    with tempfile.TemporaryDirectory(prefix="fxrz-serve-") as tmp:
        root = pathlib.Path(tmp)
        published = ModelRegistry(root / "registry").publish(pipeline)
        print(
            f"published {published.compressor}/{published.fingerprint} "
            f"v{published.version}"
        )

        inputs = []
        for i, probe in enumerate(fields[3:]):
            path = root / f"probe{i}.npy"
            np.save(path, probe)
            inputs.append(str(path))
        requests = root / "requests.jsonl"
        requests.write_text(
            "\n".join(
                json.dumps({"input": path, "ratio": ratio})
                for path in inputs
                for ratio in (4.0, 6.0, 9.0)
            )
            + "\n"
        )

        results = root / "results.jsonl"
        code = cli_main(
            [
                "estimate-batch",
                str(requests),
                "--registry",
                str(root / "registry"),
                "--compressor",
                "sz",
                "--output",
                str(results),
                "--stats",
            ]
        )
        if code != 0:
            print(f"estimate-batch exited with {code}", file=sys.stderr)
            return 1

        records = [
            json.loads(line) for line in results.read_text().splitlines()
        ]
        assert records, "service produced no output"
        assert len(records) == 6, f"expected 6 results, got {len(records)}"
        for record in records:
            assert "error" not in record, f"request failed: {record}"
            assert record["config"] > 0
            assert record["latency_ms"] > 0
        hits = sum(1 for record in records if record["cache_hit"])
        print(
            f"smoke OK: {len(records)} requests served, "
            f"{hits} feature-cache hits"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
