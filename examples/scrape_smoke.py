#!/usr/bin/env python3
"""Scrape-endpoint smoke test: a live sharded service must answer its
embedded observability routes with the series the dashboards key on.

The end-to-end path ``make obs-scrape-smoke`` exercises:

1. train a small pipeline and stand up a ``ShardedEstimationService``
   with ``scrape_port=0`` (ephemeral) and full trace sampling;
2. serve a handful of requests so every exported family has data;
3. fetch ``/metrics``, ``/healthz``, ``/slo`` and ``/spans`` over HTTP
   and assert the required ``repro_*`` series, a healthy health
   payload, the three default SLOs, and a non-empty span tree for the
   last request's ``trace_id``.

Run:
    python examples/scrape_smoke.py
"""

import json
import pathlib
import sys
import tempfile
import time
import urllib.request

import numpy as np

import repro
from repro import obs
from repro.compressors import get_compressor
from repro.core.persistence import save_pipeline
from repro.serving import ShardedEstimationService

#: Metric families the Grafana boards and the SLO tracker key on; any
#: of these going missing breaks dashboards silently, so the smoke
#: fails loudly instead.
REQUIRED_SERIES = (
    "repro_serving_requests_total",
    "repro_serving_latency_seconds",
    "repro_slo_compliance",
    "repro_slo_burn_rate",
    "repro_slo_alert",
)


def _fetch(url: str) -> tuple[int, str]:
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


def main(argv=None) -> int:
    rng = np.random.default_rng(0)
    lin = np.linspace(0, 4 * np.pi, 20)
    x, y, _ = np.meshgrid(lin, lin, lin, indexing="ij")
    fields = [
        (
            np.sin(x + 0.4 * i) * np.cos(y)
            + (0.02 + 0.01 * i) * rng.standard_normal((20,) * 3)
        ).astype(np.float32)
        for i in range(5)
    ]
    config = repro.FXRZConfig(stationary_points=8, augmented_samples=60)
    pipeline = repro.FXRZ(get_compressor("sz"), config=config)
    pipeline.fit(fields[:3])

    with tempfile.TemporaryDirectory(prefix="fxrz-scrape-") as tmp:
        model_path = pathlib.Path(tmp) / "model.fxrz"
        save_pipeline(pipeline, model_path)
        with obs.session() as (tracer, _registry):
            with ShardedEstimationService(
                pipeline,
                shards=1,
                model_path=str(model_path),
                scrape_port=0,
                trace_sample=1.0,
            ) as service:
                give_up = time.monotonic() + 30.0
                while time.monotonic() < give_up:
                    if all(
                        s["state"] == "ready" for s in service.shard_states()
                    ):
                        break
                    time.sleep(0.02)
                served = [
                    service.estimate(probe, ratio)
                    for probe in fields[3:]
                    for ratio in (4.0, 6.0)
                ]
                base = service.scrape_url
                assert base, "scrape_port=0 must yield an ephemeral URL"
                print(f"scraping {base}")

                status, metrics = _fetch(base + "/metrics")
                assert status == 200
                missing = [
                    name for name in REQUIRED_SERIES if name not in metrics
                ]
                assert not missing, f"missing metric families: {missing}"

                status, health = _fetch(base + "/healthz")
                payload = json.loads(health)
                assert status == 200 and payload["healthy"], payload
                assert payload["stats"]["completed"] == len(served)

                status, slo = _fetch(base + "/slo")
                slos = {s["name"] for s in json.loads(slo)["slos"]}
                assert slos == {"availability", "latency_p99", "calibration"}

                trace_id = served[-1].trace_id
                assert trace_id != 0, "full sampling must trace every request"
                status, spans = _fetch(f"{base}/spans?trace={trace_id}")
                names = {
                    json.loads(line)["name"]
                    for line in spans.splitlines()
                }
                assert "serving.sharded.request" in names, names
                assert "shard.serve" in names, names

    print(
        f"smoke OK: {len(served)} requests served, "
        f"{len(REQUIRED_SERIES)} required series scraped, "
        f"{len(names)} span names in the last trace"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
