#!/usr/bin/env python3
"""Use-case: archive a cosmology run under a fixed storage budget.

The paper's second motivating scenario (Sec. III-B): a supercomputer
user owns N snapshots but only ``budget`` bytes of scratch space. The
required compression ratio follows directly from the budget; FXRZ turns
it into per-field error bounds, and a halo analysis shows what the
resulting distortion means scientifically.

Run:
    python examples/storage_budget.py [--quick] [--budget-fraction 0.05]
"""

import argparse
import sys

import numpy as np

import repro
from repro.analysis.halos import halo_mislocation_fraction
from repro.compressors import get_compressor
from repro.datasets import load_series


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument(
        "--budget-fraction",
        type=float,
        default=0.05,
        help="storage budget as a fraction of the raw size",
    )
    args = parser.parse_args(argv)

    fields = ["baryon_density", "temperature"]
    if not args.quick:
        fields += ["dark_matter_density", "velocity_x"]

    config = repro.FXRZConfig(
        stationary_points=10 if args.quick else 20,
        augmented_samples=80 if args.quick else 200,
    )

    total_raw = 0
    total_compressed = 0
    print(f"storage budget: {args.budget_fraction:.0%} of raw size")
    print(f"\n{'field':22} {'TCR':>7} {'MCR':>7} {'bytes':>10} {'halo moved':>11}")

    for field in fields:
        train = [s.data for s in load_series("nyx-1", field)]
        test = load_series("nyx-2", field).snapshots[0].data

        pipeline = repro.FXRZ(get_compressor("sz"), config=config)
        pipeline.fit(train)

        # Budget -> target ratio. Clamp into the trained range so the
        # request stays answerable (Fig. 11's valid range).
        tcr = 1.0 / args.budget_fraction
        lo, hi = pipeline.trained_ratio_range(test)
        tcr = float(np.clip(tcr, max(lo, 2.0), hi * 0.8))

        result = pipeline.compress_to_ratio(test, tcr)
        total_raw += test.nbytes
        total_compressed += result.blob.nbytes

        if field.endswith("density"):
            recon = pipeline.compressor.decompress(result.blob)
            moved = halo_mislocation_fraction(test, recon, overdensity=3.0)
            moved_str = f"{moved:10.1%}"
        else:
            moved_str = "       n/a"
        print(
            f"{field:22} {tcr:7.1f} {result.measured_ratio:7.1f} "
            f"{result.blob.nbytes:10d} {moved_str}"
        )

    achieved = total_compressed / total_raw
    print(
        f"\nraw {total_raw / 1e6:.1f} MB -> compressed "
        f"{total_compressed / 1e6:.2f} MB ({achieved:.1%} of raw; "
        f"budget was {args.budget_fraction:.0%})"
    )
    within = achieved <= args.budget_fraction * 1.5
    print("within 1.5x of budget:" , "yes" if within else "no")
    return 0


if __name__ == "__main__":
    sys.exit(main())
