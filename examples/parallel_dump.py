#!/usr/bin/env python3
"""Use-case: parallel data dumping on a supercomputer (Sec. V-H).

Models the paper's Bebop experiment: N ranks each hold a snapshot,
decide an error configuration for a common target ratio, compress, and
write through a shared parallel filesystem. The decision cost differs:
FXRZ runs a feature pass; FRaZ runs the compressor ~15 times. The
model is calibrated with *measured* throughputs from this machine's
compressors.

Run:
    python examples/parallel_dump.py [--quick]
"""

import argparse
import sys

import numpy as np

import repro
from repro.baselines import FRaZ
from repro.compressors import get_compressor
from repro.datasets import load_series
from repro.hpc import DumpScenario, measure_throughput, simulate_dump


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--target-ratio", type=float, default=15.0)
    args = parser.parse_args(argv)

    data = load_series("nyx-1", "baryon_density").snapshots[0].data
    comp = get_compressor("sz")

    # Calibrate the model with measured quantities.
    config = repro.FXRZConfig(
        stationary_points=8 if args.quick else 15,
        augmented_samples=60 if args.quick else 150,
    )
    pipeline = repro.FXRZ(comp, config=config)
    pipeline.fit([s.data for s in load_series("nyx-1", "baryon_density")])

    result = pipeline.compress_to_ratio(data, args.target_ratio)
    throughput = measure_throughput(comp, data, result.estimate.config)
    fraz = FRaZ(comp, max_iterations=15).search(data, args.target_ratio)

    print(
        f"calibration: throughput {throughput / 1e6:.1f} MB/s, "
        f"FXRZ decide {result.estimate.analysis_seconds * 1e3:.1f}ms, "
        f"FRaZ decide {fraz.search_seconds:.2f}s, "
        f"ratio {result.measured_ratio:.1f}"
    )

    # Paper scale: 512 MB per rank through a ~2 GB/s GPFS.
    bytes_per_rank = 512e6
    scale = bytes_per_rank / data.nbytes  # time scales linearly in bytes
    rank_counts = [64, 256, 1024, 4096]
    print(f"\n{'ranks':>6} {'FXRZ dump(s)':>13} {'FRaZ dump(s)':>13} {'speedup':>8}")
    for n_ranks in rank_counts:
        common = dict(
            n_ranks=n_ranks,
            bytes_per_rank=bytes_per_rank,
            compression_ratio=result.measured_ratio,
            compress_throughput=throughput,
            shared_bandwidth=2e9,
        )
        fxrz_dump = simulate_dump(
            DumpScenario(
                analysis_seconds=result.estimate.analysis_seconds * scale, **common
            )
        )
        fraz_dump = simulate_dump(
            DumpScenario(analysis_seconds=fraz.search_seconds * scale, **common)
        )
        speedup = fraz_dump.total / fxrz_dump.total
        print(
            f"{n_ranks:6d} {fxrz_dump.total:13.1f} {fraz_dump.total:13.1f} "
            f"{speedup:7.2f}x"
        )
    print("\n(the paper reports a 1.18x-8.71x band on Bebop)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
