#!/usr/bin/env python3
"""Quickstart: fixed-ratio compression in five steps.

Trains FXRZ on early Hurricane Isabel timesteps (the paper's capability
level 1 setup), then fixes compression ratios on the held-out timestep
48 — without ever running the compressor during inference.

Run:
    python examples/quickstart.py [--quick]
"""

import argparse
import sys

import numpy as np

import repro
from repro.compressors import get_compressor
from repro.datasets import paper_test_series, paper_training_series


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smaller training run for CI"
    )
    parser.add_argument(
        "--compressor", default="sz", choices=["sz", "zfp", "mgard", "fpzip"]
    )
    args = parser.parse_args(argv)

    # 1. Gather training snapshots (timesteps 5..30 of the TC field).
    train = [snap.data for snap in paper_training_series("hurricane")[0]]
    test = paper_test_series("hurricane")[0].snapshots[0]
    print(f"training on {len(train)} snapshots, testing on {test.name}")

    # 2. Build and fit the pipeline.
    config = repro.FXRZConfig(
        stationary_points=10 if args.quick else 25,
        augmented_samples=80 if args.quick else 250,
    )
    pipeline = repro.FXRZ(get_compressor(args.compressor), config=config)
    report = pipeline.fit(train)
    print(
        f"trained in {report.total_seconds:.1f}s "
        f"({report.n_samples} augmented samples, "
        f"{report.stationary_seconds:.1f}s of compressor runs)"
    )

    # 3. Pick target ratios the trained model can answer for this data.
    lo, hi = pipeline.trained_ratio_range(test.data)
    lo = max(lo * 1.3, 2.0)
    hi = hi * 0.6
    targets = np.linspace(lo, max(hi, lo * 1.5), 5)

    # 4. Fix each ratio on the unseen snapshot.
    print(f"\n{'TCR':>8} {'config':>12} {'MCR':>8} {'error':>7} {'analysis':>9}")
    errors = []
    for tcr in targets:
        result = pipeline.compress_to_ratio(test.data, float(tcr))
        errors.append(result.estimation_error)
        print(
            f"{tcr:8.1f} {result.estimate.config:12.4g} "
            f"{result.measured_ratio:8.1f} {result.estimation_error:6.1%} "
            f"{result.estimate.analysis_seconds * 1e3:7.1f}ms"
        )

    # 5. The headline number: mean estimation error (paper: ~8 %).
    print(f"\nmean estimation error: {float(np.mean(errors)):.1%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
