#!/usr/bin/env python3
"""Runtime-session smoke test: one context drives train + serve + search.

The end-to-end path ``make runtime-smoke`` exercises:

1. build one ``RuntimeContext`` (2 workers, trace + metrics export);
2. under it, train an FXRZ pipeline, serve a small batch through the
   estimation service, and run a FRaZ baseline search — all drawing
   their executor/memo/tracer/registry from the same session;
3. exit the context and assert the teardown contract: the trace and
   metrics files exist and are non-empty, the worker pool is gone, and
   the closed context refuses further work.

Run:
    python examples/runtime_smoke.py
"""

import multiprocessing
import pathlib
import sys
import tempfile

import numpy as np

import repro
from repro import obs
from repro.baselines.fraz import FRaZ
from repro.compressors import get_compressor
from repro.errors import InvalidConfiguration
from repro.serving import EstimateRequest, EstimationService


def main(argv=None) -> int:
    rng = np.random.default_rng(0)
    lin = np.linspace(0, 4 * np.pi, 20)
    x, y, _ = np.meshgrid(lin, lin, lin, indexing="ij")
    fields = [
        (
            np.sin(x + 0.4 * i) * np.cos(y)
            + (0.02 + 0.01 * i) * rng.standard_normal((20,) * 3)
        ).astype(np.float32)
        for i in range(4)
    ]

    with tempfile.TemporaryDirectory(prefix="fxrz-runtime-") as tmp:
        root = pathlib.Path(tmp)
        trace = root / "trace.jsonl"
        metrics = root / "metrics.txt"
        ctx = repro.RuntimeContext(
            env={}, jobs=2, trace=str(trace), metrics=str(metrics)
        )
        with ctx:
            config = repro.FXRZConfig(stationary_points=8, augmented_samples=60)
            pipeline = repro.FXRZ(get_compressor("sz"), config=config, ctx=ctx)
            pipeline.fit(fields[:3])
            print(f"trained under ctx (jobs={ctx.config.jobs})")

            with EstimationService.for_pipeline(
                pipeline, guarded=True, workers=2
            ) as service:
                served = service.run_batch(
                    [
                        EstimateRequest(data=fields[3], target_ratio=ratio)
                        for ratio in (4.0, 6.0, 9.0)
                    ]
                )
            assert len(served) == 3
            assert all(s.estimate.config > 0 for s in served)
            print(f"served {len(served)} requests through the session")

            result = FRaZ(get_compressor("sz"), max_iterations=6, ctx=ctx).search(
                fields[3], 8.0
            )
            assert result.config > 0
            print(
                f"FRaZ search done ({result.iterations} iterations, "
                f"{ctx.memo.hits} memo hits so far)"
            )

        # -- teardown contract ------------------------------------------------
        assert ctx.closed, "context must close on exit"
        assert trace.is_file() and trace.stat().st_size > 0, "empty trace"
        assert metrics.is_file() and metrics.stat().st_size > 0, "empty metrics"
        assert ctx.exported_spans > 0
        assert multiprocessing.active_children() == [], "leaked workers"
        assert obs.get_tracer() is None, "ambient tracer not restored"
        try:
            ctx.executor
        except InvalidConfiguration:
            pass
        else:
            raise AssertionError("closed context handed out its executor")
        spans = obs.load_trace(trace)
        names = {s.name for s in spans}
        for phase in ("augmentation.build_curve", "serving.request", "fraz.search"):
            assert phase in names, f"missing {phase} in exported trace"
        print(
            f"smoke OK: {len(spans)} spans exported, clean teardown "
            f"({len(ctx.teardown_notes)} teardown notes)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
